"""Synthetic QML datasets (MNIST / Fashion-MNIST / Vowel stand-ins).

The paper's benchmarks are 2/4/10-class MNIST, 2/4-class Fashion-MNIST (both
center-cropped and average-pooled to 4x4 or 6x6 pixels) and the 4-class Vowel
dataset reduced to its 10 leading PCA components.  Real downloads are not
available offline, so each dataset is replaced by a deterministic synthetic
class-conditional generator of identical dimensionality, split sizes, and
difficulty profile (classes overlap, so accuracy is bounded away from 100%).
The substitution is recorded in DESIGN.md.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from ..utils.rng import ensure_rng

__all__ = ["Dataset", "make_classification_dataset", "load_task", "TASK_SPECS"]


@dataclass
class Dataset:
    """Train / validation / test splits of a classification task."""

    name: str
    x_train: np.ndarray
    y_train: np.ndarray
    x_valid: np.ndarray
    y_valid: np.ndarray
    x_test: np.ndarray
    y_test: np.ndarray

    @property
    def n_classes(self) -> int:
        return int(self.y_train.max()) + 1

    @property
    def n_features(self) -> int:
        return self.x_train.shape[1]

    def subsample_test(self, n_samples: int, seed: int = 0) -> "Dataset":
        """Restrict the test split (the paper samples 300 test images)."""
        rng = ensure_rng(seed)
        n_samples = min(n_samples, len(self.y_test))
        index = rng.permutation(len(self.y_test))[:n_samples]
        return Dataset(
            name=self.name,
            x_train=self.x_train,
            y_train=self.y_train,
            x_valid=self.x_valid,
            y_valid=self.y_valid,
            x_test=self.x_test[index],
            y_test=self.y_test[index],
        )


def _smooth_prototype(rng: np.random.Generator, side: int) -> np.ndarray:
    """A smooth random image prototype (low-frequency 2-D cosine mixture)."""
    xs = np.linspace(0.0, 1.0, side)
    grid_x, grid_y = np.meshgrid(xs, xs)
    image = np.zeros((side, side))
    for _ in range(3):
        fx, fy = rng.uniform(0.5, 2.5, size=2)
        phase_x, phase_y = rng.uniform(0, 2 * np.pi, size=2)
        amplitude = rng.uniform(0.5, 1.0)
        image += amplitude * np.cos(2 * np.pi * fx * grid_x + phase_x) * np.cos(
            2 * np.pi * fy * grid_y + phase_y
        )
    return image.reshape(-1)


def make_classification_dataset(
    name: str,
    n_classes: int,
    n_features: int,
    n_train: int = 360,
    n_valid: int = 120,
    n_test: int = 300,
    noise_scale: float = 0.9,
    image_side: Optional[int] = None,
    raw_dim: Optional[int] = None,
    apply_pca: bool = False,
    seed: int = 0,
) -> Dataset:
    """Generate a class-conditional synthetic dataset.

    Samples are drawn around per-class prototype vectors with additive
    Gaussian noise; features are then scaled into ``[0, pi]`` so they can be
    used directly as rotation angles by the encoders.  When ``raw_dim`` is
    larger than ``n_features`` and ``apply_pca`` is set, samples are generated
    in the raw space and reduced with PCA (the Vowel preprocessing).
    """
    rng = ensure_rng(seed)
    if raw_dim is None:
        raw_dim = n_features if image_side is None else image_side * image_side
    if image_side is not None:
        prototypes = np.stack(
            [_smooth_prototype(rng, image_side) for _ in range(n_classes)]
        )
    else:
        prototypes = rng.normal(0.0, 1.0, size=(n_classes, raw_dim))

    total = n_train + n_valid + n_test
    labels = rng.integers(0, n_classes, size=total)
    samples = prototypes[labels] + noise_scale * rng.normal(0.0, 1.0, size=(total, raw_dim))

    if apply_pca and raw_dim > n_features:
        centered = samples - samples.mean(axis=0, keepdims=True)
        _u, _s, v_t = np.linalg.svd(centered, full_matrices=False)
        samples = centered @ v_t[:n_features].T
    elif raw_dim != n_features:
        samples = samples[:, :n_features]

    low = samples.min(axis=0, keepdims=True)
    high = samples.max(axis=0, keepdims=True)
    span = np.where(high - low > 1e-9, high - low, 1.0)
    samples = np.pi * (samples - low) / span

    x_train, y_train = samples[:n_train], labels[:n_train]
    x_valid, y_valid = (
        samples[n_train : n_train + n_valid],
        labels[n_train : n_train + n_valid],
    )
    x_test, y_test = samples[n_train + n_valid :], labels[n_train + n_valid :]
    return Dataset(name, x_train, y_train, x_valid, y_valid, x_test, y_test)


@dataclass(frozen=True)
class _TaskSpec:
    n_classes: int
    n_features: int
    image_side: Optional[int]
    apply_pca: bool
    noise_scale: float
    seed: int


TASK_SPECS: Dict[str, _TaskSpec] = {
    "mnist-2": _TaskSpec(2, 16, 4, False, 0.9, 101),
    "mnist-4": _TaskSpec(4, 16, 4, False, 0.9, 102),
    "mnist-10": _TaskSpec(10, 36, 6, False, 0.9, 103),
    "fashion-2": _TaskSpec(2, 16, 4, False, 1.0, 104),
    "fashion-4": _TaskSpec(4, 16, 4, False, 1.0, 105),
    "vowel-4": _TaskSpec(4, 10, None, True, 1.1, 106),
}

# Vowel's raw dimensionality before PCA (10 cepstrum-like features x 2 frames).
_VOWEL_RAW_DIM = 20


def load_task(
    task_name: str,
    n_train: int = 360,
    n_valid: int = 120,
    n_test: int = 300,
) -> Dataset:
    """Load one of the paper's QML benchmark tasks (synthetic stand-in)."""
    key = task_name.lower()
    if key not in TASK_SPECS:
        raise KeyError(
            f"unknown task '{task_name}'; available: {', '.join(sorted(TASK_SPECS))}"
        )
    spec = TASK_SPECS[key]
    return make_classification_dataset(
        key,
        spec.n_classes,
        spec.n_features,
        n_train=n_train,
        n_valid=n_valid,
        n_test=n_test,
        noise_scale=spec.noise_scale,
        image_side=spec.image_side,
        raw_dim=_VOWEL_RAW_DIM if spec.apply_pca else None,
        apply_pca=spec.apply_pca,
        seed=spec.seed,
    )
