"""Noisy evaluation of QNNs and hardware-style (parameter-shift) training.

``evaluate_on_backend`` is the "measured accuracy on the real quantum
computer" path of the paper: every test sample's circuit is compiled with the
chosen qubit mapping and executed on the shot-based noisy backend.
``make_parameter_shift_gradient_fn`` provides the on-device training mode used
for Table V and Fig. 16.
"""

from __future__ import annotations

import os
from typing import Callable, Dict, Optional, Sequence

import numpy as np

from ..devices.backend import QuantumBackend
from ..gradients import (
    BatchedGradientEngine,
    GradientEngineConfig,
    ShardedGradientEngine,
)
from ..quantum.autodiff import parameter_shift_jacobian
from ..quantum.statevector import expectation_z_all, run_parameterized
from ..transpile.compiler import transpile
from ..utils.stats import accuracy, cross_entropy_with_logits, nll_loss, softmax
from .qnn import QNNModel

__all__ = [
    "evaluate_on_backend",
    "noisy_expectations",
    "ParameterShiftGradient",
    "make_parameter_shift_gradient_fn",
]


def noisy_expectations(
    model: QNNModel,
    weights: np.ndarray,
    features: np.ndarray,
    backend: QuantumBackend,
    initial_layout=None,
    optimization_level: int = 2,
    shots: Optional[int] = None,
) -> np.ndarray:
    """Per-sample Z expectations measured on the noisy backend.

    Every sample shares one circuit structure, so this goes through
    :meth:`QuantumBackend.run_parameterized` — a backend carrying a
    parametric transpile cache (e.g. the search estimator's, handed down by
    the pipeline) compiles the structure once and re-binds angles per sample.
    """
    features = np.atleast_2d(np.asarray(features, dtype=float))
    expectations = np.zeros((len(features), model.n_qubits))
    for index, row in enumerate(features):
        result = backend.run_parameterized(
            model.circuit,
            weights,
            row,
            initial_layout=initial_layout,
            optimization_level=optimization_level,
            shots=shots,
        )
        expectations[index] = result.expectation_z_all()
    return expectations


def evaluate_on_backend(
    model: QNNModel,
    weights: np.ndarray,
    features: np.ndarray,
    labels: np.ndarray,
    backend: QuantumBackend,
    initial_layout=None,
    optimization_level: int = 2,
    shots: Optional[int] = None,
    max_samples: Optional[int] = None,
) -> Dict[str, float]:
    """Measured loss / accuracy of a trained QNN on a noisy device."""
    features = np.atleast_2d(np.asarray(features, dtype=float))
    labels = np.asarray(labels, dtype=int)
    if max_samples is not None:
        features = features[:max_samples]
        labels = labels[:max_samples]
    expectations = noisy_expectations(
        model,
        weights,
        features,
        backend,
        initial_layout=initial_layout,
        optimization_level=optimization_level,
        shots=shots,
    )
    logits = model.logits_from_expectations(expectations)
    probs = softmax(logits)
    return {
        "loss": nll_loss(probs, labels),
        "accuracy": accuracy(logits, labels),
        "n_samples": float(len(labels)),
    }


class ParameterShiftGradient:
    """A ``gradient_fn`` for :func:`repro.qml.training.train_qnn` that routes
    the full shift-rule gradient through the batched engines.

    Without a backend, gradients come from the parameter-shift rule evaluated
    on the noise-free simulator (the paper's classical-simulation check of
    parameter-shift training).  With a backend, every shifted expectation is
    evaluated under the device noise model (``shots == 0``, the batched
    density path) or measured with finite shots (the fully on-hardware
    training mode, per-job pinned sampling seeds).

    ``engine`` selects the evaluation strategy:

    * ``"auto"``/``"batched"`` — all ``2 * num_weights + 1`` weight rows fuse
      into one dispatched evaluation (matches sequential to batching
      tolerance, see :mod:`repro.gradients`);
    * ``"sequential"`` — one engine call per row, the bitwise row-unit the
      sharded path reproduces;
    * ``"legacy"`` — the historical closure over
      :func:`~repro.quantum.autodiff.parameter_shift_jacobian` /
      :func:`noisy_expectations`, kept as the equivalence-test baseline.

    ``workers`` (default: the ``REPRO_WORKERS`` environment variable) > 1
    shards the rows of every step across persistent worker processes with
    bit-for-bit identical results; sharded engines always evaluate rows
    sequentially, so ``engine`` is ignored apart from ``"legacy"``.
    Instances are context managers — :meth:`close` shuts worker pools down.
    """

    def __init__(
        self,
        backend: Optional[QuantumBackend] = None,
        initial_layout=None,
        shots: Optional[int] = None,
        *,
        engine: str = "auto",
        workers: Optional[int] = None,
        seed: int = 0,
        optimization_level: int = 2,
    ) -> None:
        if engine == "auto":
            engine = "batched"
        if engine not in ("batched", "sequential", "legacy"):
            raise ValueError(f"unknown gradient engine {engine!r}")
        self.backend = backend
        self.initial_layout = initial_layout
        self.shots = shots
        self._engine = None
        self._stats_snapshot = None
        self._scheduler_snapshot = None
        if engine == "legacy":
            return
        if workers is None:
            workers = int(os.environ.get("REPRO_WORKERS", "1"))
        device = backend.device if backend is not None else None
        if backend is None:
            resolved_shots = 0
        else:
            resolved_shots = int(backend.shots if shots is None else shots)
        config = GradientEngineConfig(
            shots=resolved_shots,
            seed=int(seed),
            optimization_level=int(optimization_level),
            max_density_qubits=int(getattr(backend, "max_density_qubits", 10)),
        )
        if int(workers) > 1:
            self._engine = ShardedGradientEngine(
                device, config,
                initial_layout=initial_layout, workers=int(workers),
            )
        else:
            # share the backend's caches, so gradient compilations flow into
            # the same warm state the forward/evaluation paths reuse
            self._engine = BatchedGradientEngine(
                device, config,
                initial_layout=initial_layout,
                transpile_cache=getattr(backend, "transpile_cache", None),
                parametric_cache=getattr(backend, "parametric_cache", None),
                engine=engine,
            )
        self._stats_snapshot = self._engine.stats.copy()
        scheduler_stats = getattr(self._engine, "scheduler_stats", None)
        if scheduler_stats is not None:
            self._scheduler_snapshot = scheduler_stats.copy()

    # -- gradient_fn protocol -------------------------------------------------

    def __call__(self, model: QNNModel, weights, features, labels):
        features = np.atleast_2d(np.asarray(features, dtype=float))
        labels = np.asarray(labels, dtype=int)
        weights = np.asarray(weights, dtype=float)
        if self._engine is None:
            return self._legacy(model, weights, features, labels)
        plan = self._engine.shift_plan(model.circuit)
        rows = np.concatenate(
            [weights[None, :], plan.shifted_weight_rows(weights)]
        )
        expectations = self._engine.qml_expectations_rows(
            model.circuit, rows, features, witness_weights=weights
        )
        logits = model.logits_from_expectations(expectations[0])
        loss, grad_logits = cross_entropy_with_logits(logits, labels)
        if plan.num_weights == 0:
            return loss, np.zeros(0)
        grad_expectations = grad_logits @ model.readout  # (batch, n_qubits)
        jacobian = plan.jacobian_from_shifted(expectations[1:])
        grads = np.einsum("bq,bqw->w", grad_expectations, jacobian)
        return loss, grads

    def _legacy(self, model: QNNModel, weights, features, labels):
        """The historical sequential path (equivalence-test baseline)."""

        def expectations_fn(weight_vector: np.ndarray) -> np.ndarray:
            if self.backend is None:
                states = run_parameterized(model.circuit, weight_vector, features)
                return expectation_z_all(states)
            return noisy_expectations(
                model,
                weight_vector,
                features,
                self.backend,
                initial_layout=self.initial_layout,
                shots=self.shots,
            )

        expectations = expectations_fn(weights)
        logits = model.logits_from_expectations(expectations)
        loss, grad_logits = cross_entropy_with_logits(logits, labels)
        grad_expectations = grad_logits @ model.readout  # (batch, n_qubits)
        jacobian = parameter_shift_jacobian(
            expectations_fn, model.circuit, weights
        )  # (batch, n_qubits, n_weights)
        grads = np.einsum("bq,bqw->w", grad_expectations, jacobian)
        return loss, grads

    # -- reporting / lifecycle ------------------------------------------------

    def epoch_report(self) -> Dict[str, float]:
        """Per-epoch counter deltas, merged into training history records."""
        if self._engine is None:
            return {}
        report: Dict[str, float] = {}
        stats = self._engine.stats
        delta = stats.diff(self._stats_snapshot)
        self._stats_snapshot = stats.copy()
        for key, value in delta.to_dict().items():
            report[f"gradient_{key}"] = float(value)
        scheduler_stats = getattr(self._engine, "scheduler_stats", None)
        if scheduler_stats is not None:
            delta = scheduler_stats.diff(self._scheduler_snapshot)
            self._scheduler_snapshot = scheduler_stats.copy()
            for key, value in delta.to_dict().items():
                report[f"gradient_{key}"] = float(value)
        return report

    def close(self) -> None:
        if self._engine is not None:
            self._engine.close()

    def __enter__(self) -> "ParameterShiftGradient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def make_parameter_shift_gradient_fn(
    backend: Optional[QuantumBackend] = None,
    initial_layout=None,
    shots: Optional[int] = None,
    *,
    engine: str = "auto",
    workers: Optional[int] = None,
    seed: int = 0,
) -> Callable:
    """Build a ``gradient_fn`` for :func:`repro.qml.training.train_qnn`.

    Returns a :class:`ParameterShiftGradient`; see its docstring for the
    engine/worker knobs.  Kept as a function for backwards compatibility
    with callers of the original closure-based API.
    """
    return ParameterShiftGradient(
        backend,
        initial_layout=initial_layout,
        shots=shots,
        engine=engine,
        workers=workers,
        seed=seed,
    )
