"""Noisy evaluation of QNNs and hardware-style (parameter-shift) training.

``evaluate_on_backend`` is the "measured accuracy on the real quantum
computer" path of the paper: every test sample's circuit is compiled with the
chosen qubit mapping and executed on the shot-based noisy backend.
``make_parameter_shift_gradient_fn`` provides the on-device training mode used
for Table V and Fig. 16.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Sequence

import numpy as np

from ..devices.backend import QuantumBackend
from ..quantum.autodiff import parameter_shift_jacobian
from ..quantum.statevector import expectation_z_all, run_parameterized
from ..transpile.compiler import transpile
from ..utils.stats import accuracy, cross_entropy_with_logits, nll_loss, softmax
from .qnn import QNNModel

__all__ = [
    "evaluate_on_backend",
    "noisy_expectations",
    "make_parameter_shift_gradient_fn",
]


def noisy_expectations(
    model: QNNModel,
    weights: np.ndarray,
    features: np.ndarray,
    backend: QuantumBackend,
    initial_layout=None,
    optimization_level: int = 2,
    shots: Optional[int] = None,
) -> np.ndarray:
    """Per-sample Z expectations measured on the noisy backend.

    Every sample shares one circuit structure, so this goes through
    :meth:`QuantumBackend.run_parameterized` — a backend carrying a
    parametric transpile cache (e.g. the search estimator's, handed down by
    the pipeline) compiles the structure once and re-binds angles per sample.
    """
    features = np.atleast_2d(np.asarray(features, dtype=float))
    expectations = np.zeros((len(features), model.n_qubits))
    for index, row in enumerate(features):
        result = backend.run_parameterized(
            model.circuit,
            weights,
            row,
            initial_layout=initial_layout,
            optimization_level=optimization_level,
            shots=shots,
        )
        expectations[index] = result.expectation_z_all()
    return expectations


def evaluate_on_backend(
    model: QNNModel,
    weights: np.ndarray,
    features: np.ndarray,
    labels: np.ndarray,
    backend: QuantumBackend,
    initial_layout=None,
    optimization_level: int = 2,
    shots: Optional[int] = None,
    max_samples: Optional[int] = None,
) -> Dict[str, float]:
    """Measured loss / accuracy of a trained QNN on a noisy device."""
    features = np.atleast_2d(np.asarray(features, dtype=float))
    labels = np.asarray(labels, dtype=int)
    if max_samples is not None:
        features = features[:max_samples]
        labels = labels[:max_samples]
    expectations = noisy_expectations(
        model,
        weights,
        features,
        backend,
        initial_layout=initial_layout,
        optimization_level=optimization_level,
        shots=shots,
    )
    logits = model.logits_from_expectations(expectations)
    probs = softmax(logits)
    return {
        "loss": nll_loss(probs, labels),
        "accuracy": accuracy(logits, labels),
        "n_samples": float(len(labels)),
    }


def make_parameter_shift_gradient_fn(
    backend: Optional[QuantumBackend] = None,
    initial_layout=None,
    shots: Optional[int] = None,
) -> Callable:
    """Build a ``gradient_fn`` for :func:`repro.qml.training.train_qnn`.

    Without a backend, gradients come from the parameter-shift rule evaluated
    on the noise-free simulator (the paper's classical-simulation check of
    parameter-shift training).  With a backend, every shifted expectation is
    measured on the noisy device — the fully on-hardware training mode.
    """

    def gradient_fn(model: QNNModel, weights, features, labels):
        features = np.atleast_2d(np.asarray(features, dtype=float))
        labels = np.asarray(labels, dtype=int)

        def expectations_fn(weight_vector: np.ndarray) -> np.ndarray:
            if backend is None:
                states = run_parameterized(model.circuit, weight_vector, features)
                return expectation_z_all(states)
            return noisy_expectations(
                model,
                weight_vector,
                features,
                backend,
                initial_layout=initial_layout,
                shots=shots,
            )

        expectations = expectations_fn(np.asarray(weights, dtype=float))
        logits = model.logits_from_expectations(expectations)
        loss, grad_logits = cross_entropy_with_logits(logits, labels)
        grad_expectations = grad_logits @ model.readout  # (batch, n_qubits)
        jacobian = parameter_shift_jacobian(
            expectations_fn, model.circuit, np.asarray(weights, dtype=float)
        )  # (batch, n_qubits, n_weights)
        grads = np.einsum("bq,bqw->w", grad_expectations, jacobian)
        return loss, grads

    return gradient_fn
