"""Quantum machine learning layer: encoders, datasets, QNN models, training."""

from .datasets import Dataset, TASK_SPECS, load_task, make_classification_dataset
from .encoders import (
    ENCODER_LIBRARY,
    EncoderSpec,
    attach_encoder,
    build_encoder_ops,
    encoder_for_task,
)
from .evaluation import (
    ParameterShiftGradient,
    evaluate_on_backend,
    make_parameter_shift_gradient_fn,
    noisy_expectations,
)
from .qnn import QNNModel, readout_matrix
from .training import TrainConfig, TrainResult, evaluate_noise_free, train_qnn

__all__ = [
    "Dataset",
    "TASK_SPECS",
    "load_task",
    "make_classification_dataset",
    "ENCODER_LIBRARY",
    "EncoderSpec",
    "attach_encoder",
    "build_encoder_ops",
    "encoder_for_task",
    "evaluate_on_backend",
    "make_parameter_shift_gradient_fn",
    "ParameterShiftGradient",
    "noisy_expectations",
    "QNNModel",
    "readout_matrix",
    "TrainConfig",
    "TrainResult",
    "evaluate_noise_free",
    "train_qnn",
]
