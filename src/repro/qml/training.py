"""Training loops for QNN models.

The default hyper-parameters follow Section IV of the paper: Adam with initial
learning rate 5e-3, weight decay 1e-4, cosine learning-rate schedule and an
optional linear warm-up.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

import numpy as np

from ..utils.optimizers import Adam, CosineWarmupSchedule
from ..utils.rng import ensure_rng
from ..utils.stats import accuracy, nll_loss, softmax
from .datasets import Dataset
from .qnn import QNNModel

__all__ = ["TrainConfig", "TrainResult", "train_qnn", "evaluate_noise_free"]


@dataclass
class TrainConfig:
    """Hyper-parameters of a QNN training run."""

    epochs: int = 30
    batch_size: int = 64
    learning_rate: float = 5e-3
    weight_decay: float = 1e-4
    warmup_epochs: int = 0
    seed: int = 0
    shuffle: bool = True


@dataclass
class TrainResult:
    """Final weights plus the per-epoch training history."""

    weights: np.ndarray
    history: List[Dict[str, float]] = field(default_factory=list)

    @property
    def final_train_loss(self) -> float:
        return self.history[-1]["train_loss"] if self.history else float("nan")

    @property
    def best_valid_loss(self) -> float:
        losses = [h["valid_loss"] for h in self.history if "valid_loss" in h]
        return min(losses) if losses else float("nan")


def evaluate_noise_free(
    model: QNNModel, weights: np.ndarray, features: np.ndarray, labels: np.ndarray
) -> Dict[str, float]:
    """Loss and accuracy of the noise-free simulation."""
    out = model.forward(weights, features)
    probs = softmax(out.logits)
    return {
        "loss": nll_loss(probs, labels),
        "accuracy": accuracy(out.logits, labels),
    }


def train_qnn(
    model: QNNModel,
    dataset: Dataset,
    config: Optional[TrainConfig] = None,
    initial_weights: Optional[np.ndarray] = None,
    weight_mask: Optional[np.ndarray] = None,
    gradient_fn: Optional[Callable] = None,
    log_fn: Optional[Callable[[int, Dict[str, float]], None]] = None,
) -> TrainResult:
    """Train a QNN with minibatch Adam.

    ``weight_mask`` (boolean, one entry per weight) freezes masked-out weights
    at their current values — used by iterative pruning's finetuning stage.
    ``gradient_fn`` overrides the gradient computation (e.g. the
    parameter-shift estimator for on-device training); it must accept
    ``(model, weights, features, labels)`` and return ``(loss, grads)``.
    """
    config = config or TrainConfig()
    rng = ensure_rng(config.seed)
    weights = (
        model.init_weights(rng) if initial_weights is None else np.array(initial_weights, dtype=float)
    )
    if weight_mask is None:
        weight_mask = np.ones_like(weights, dtype=bool)
    weight_mask = np.asarray(weight_mask, dtype=bool)

    n_train = len(dataset.y_train)
    batches_per_epoch = max(1, int(np.ceil(n_train / config.batch_size)))
    total_steps = config.epochs * batches_per_epoch
    schedule = CosineWarmupSchedule(
        base_lr=config.learning_rate,
        total_steps=max(total_steps, 1),
        warmup_steps=config.warmup_epochs * batches_per_epoch,
    )
    optimizer = Adam(
        lr=config.learning_rate,
        weight_decay=config.weight_decay,
        schedule=schedule,
    )

    history: List[Dict[str, float]] = []
    for epoch in range(config.epochs):
        order = rng.permutation(n_train) if config.shuffle else np.arange(n_train)
        epoch_loss = 0.0
        for start in range(0, n_train, config.batch_size):
            index = order[start : start + config.batch_size]
            x_batch = dataset.x_train[index]
            y_batch = dataset.y_train[index]
            if gradient_fn is None:
                loss, grads, _logits = model.loss_and_gradient(weights, x_batch, y_batch)
            else:
                loss, grads = gradient_fn(model, weights, x_batch, y_batch)
            grads = np.where(weight_mask, grads, 0.0)
            weights = optimizer.step(weights, grads, mask=weight_mask)
            epoch_loss += loss * len(index)
        epoch_loss /= n_train

        record: Dict[str, float] = {"epoch": epoch, "train_loss": epoch_loss}
        if len(dataset.y_valid):
            valid = evaluate_noise_free(
                model, weights, dataset.x_valid, dataset.y_valid
            )
            record["valid_loss"] = valid["loss"]
            record["valid_accuracy"] = valid["accuracy"]
        # a gradient_fn that tracks engine counters (ParameterShiftGradient)
        # reports per-epoch deltas into the history record
        report = getattr(gradient_fn, "epoch_report", None)
        if callable(report):
            for key, value in report().items():
                record.setdefault(key, value)
        history.append(record)
        if log_fn is not None:
            log_fn(epoch, record)
    return TrainResult(weights=weights, history=history)
