"""The performance estimator used inside the evolutionary co-search.

Given a candidate (SubCircuit, qubit mapping) pair, the estimator assigns the
SubCircuit its *inherited* parameters and predicts its measured performance on
the target device.  Two estimation modes follow the paper:

* ``noise_sim`` — compile with the candidate mapping and simulate with the
  device's full noise model (used for small circuits, <= ~10 qubits);
* ``success_rate`` — noise-free simulation combined with the product of
  per-gate success rates (``l_augmented = l_noise_free / r_overall``), used for
  circuits too large to simulate with noise.

``mode="real_qc"`` evaluates on the shot-based backend instead, which is the
Table IV "search with real QC in the loop" configuration.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from ..devices.backend import QuantumBackend
from ..devices.library import Device
from ..qml.datasets import Dataset
from ..qml.qnn import QNNModel
from ..quantum.circuit import ParameterizedCircuit
from ..quantum.density_matrix import DensityMatrixSimulator, expectation_pauli_sum_dm
from ..quantum.operators import PauliString, PauliSum
from ..quantum.statevector import expectation_pauli_sum, run_parameterized
from ..transpile.compiler import transpile
from ..utils.rng import ensure_rng
from ..utils.stats import nll_loss, softmax
from ..vqe.molecules import Molecule

__all__ = ["EstimatorConfig", "PerformanceEstimator"]


@dataclass
class EstimatorConfig:
    """Configuration of the performance estimator."""

    mode: str = "auto"               # auto | noise_sim | success_rate | noise_free | real_qc
    optimization_level: int = 2
    max_density_qubits: int = 10
    n_valid_samples: int = 24
    shots: int = 2048                # only used in real_qc mode
    seed: int = 0
    # -- population execution engine (see repro.execution) --------------------
    engine: str = "batched"          # batched | sequential
    fusion: bool = True              # gate-fuse concrete segments of the hot loop
    max_fused_qubits: int = 3
    transpile_cache_size: int = 1024
    #: compile each (genome, mapping) structure once and re-bind angles per
    #: sample (repro.transpile.parametric); False replays the exact PR-2
    #: bound-circuit cache path.  Only affects the batched engine.
    parametric_transpile: bool = True
    #: worker processes for population evaluation.  > 1 makes
    #: :meth:`PerformanceEstimator.population_engine` return a
    #: :class:`~repro.execution.scheduler.ShardedExecutionEngine`; <= 1 stays
    #: in-process.  The default honours the ``REPRO_WORKERS`` environment
    #: variable (the CI matrix runs the suite with ``REPRO_WORKERS=2``).
    #: Scores are bit-for-bit independent of this value.
    workers: int = field(
        default_factory=lambda: int(os.environ.get("REPRO_WORKERS", "1"))
    )
    #: minimum candidates per shard worth one process dispatch; populations
    #: smaller than ``2 * shard_min_group_size`` evaluate in-process
    shard_min_group_size: int = 4
    #: simulation-backend override for population evaluation (see
    #: :mod:`repro.backends`): ``None`` lets the dispatcher pick per group by
    #: estimator mode / qubit count; a name ("density", "statevector",
    #: "shots", or any registered third-party backend) is applied wherever
    #: that backend's capabilities allow and ignored elsewhere.  Defaults to
    #: the ``REPRO_BACKEND`` environment variable (the CI matrix runs a
    #: ``REPRO_BACKEND=statevector`` lane).  Unknown names raise when the
    #: first execution engine is constructed.
    backend: Optional[str] = field(
        default_factory=lambda: os.environ.get("REPRO_BACKEND") or None
    )
    # -- shard resilience policy (see repro.execution.resilience) -------------
    #: per-shard wall-clock deadline; a shard still running past it is
    #: declared hung, its worker pool is killed, and the shard is retried.
    #: ``None`` disables the watchdog (futures are awaited unbounded).
    shard_deadline_seconds: Optional[float] = 600.0
    #: retry rounds for infrastructure-failed shard tasks before the
    #: generation degrades to the in-process path
    shard_retries: int = 2
    #: base / cap of the capped exponential backoff between retry rounds
    shard_backoff_seconds: float = 0.05
    shard_backoff_max_seconds: float = 2.0

    def __post_init__(self) -> None:
        valid = ("auto", "noise_sim", "success_rate", "noise_free", "real_qc")
        if self.mode not in valid:
            raise ValueError(f"mode must be one of {valid}")
        if self.engine not in ("batched", "sequential"):
            raise ValueError("engine must be 'batched' or 'sequential'")
        self.workers = int(self.workers)
        if self.shard_min_group_size < 1:
            raise ValueError("shard_min_group_size must be positive")
        if self.backend is not None:
            self.backend = str(self.backend).strip().lower() or None


class PerformanceEstimator:
    """Estimates QML validation loss or VQE energy under device noise."""

    def __init__(self, device: Device, config: Optional[EstimatorConfig] = None) -> None:
        self.device = device
        self.config = config or EstimatorConfig()
        self.rng = ensure_rng(self.config.seed)
        self._backend = QuantumBackend(
            device,
            shots=self.config.shots,
            seed=self.config.seed,
            max_density_qubits=self.config.max_density_qubits,
        )
        self.num_queries = 0
        # Task-level artifacts (the observable PauliSum and its measurement
        # grouping) are fixed across an entire co-search, so they are derived
        # once per task instead of once per candidate.  Entries keep a strong
        # reference to the molecule: the keys are object ids, which CPython
        # may otherwise reuse after garbage collection.
        self._observables: Dict[int, Tuple[Molecule, PauliSum]] = {}
        self._measurement_plans: Dict[Tuple[int, int], Tuple[Molecule, "MeasurementPlan"]] = {}
        # Transpile caches live on the estimator (not on each ExecutionEngine)
        # so they persist across co-search restarts, across engines created
        # from the same estimator, and into the deploy/evaluate stage — the
        # ROADMAP's warm-start item.  Imported lazily to keep repro.core free
        # of an import-time dependency on repro.execution.
        from ..execution.cache import ParametricTranspileCache, TranspileCache

        self.transpile_cache = TranspileCache(self.config.transpile_cache_size)
        self.parametric_transpile_cache = ParametricTranspileCache(
            bound_maxsize=self.config.transpile_cache_size,
            fallback=self.transpile_cache,
        )

    # -- mode resolution ---------------------------------------------------------

    def resolve_mode(self, n_qubits: int) -> str:
        """The estimation mode used for an ``n_qubits`` candidate."""
        if self.config.mode != "auto":
            return self.config.mode
        if n_qubits <= self.config.max_density_qubits:
            return "noise_sim"
        return "success_rate"

    # backwards-compatible alias
    _resolve_mode = resolve_mode

    # -- task-level observables ---------------------------------------------------

    def observable_for(self, molecule: Molecule) -> PauliSum:
        """The molecule's Hamiltonian, derived once per task.

        The observable is identical for every candidate of a co-search; this
        hoists it out of the per-candidate hot path so implementations whose
        ``hamiltonian`` is derived lazily are only queried once.
        """
        key = id(molecule)
        if key not in self._observables:
            self._observables[key] = (molecule, molecule.hamiltonian)
        return self._observables[key][1]

    def measurement_plan_for(self, molecule: Molecule, n_qubits: int):
        """The commuting-group measurement plan, derived once per task."""
        from ..quantum.measurement import MeasurementPlan

        key = (id(molecule), int(n_qubits))
        if key not in self._measurement_plans:
            self._measurement_plans[key] = (
                molecule,
                MeasurementPlan(self.observable_for(molecule), int(n_qubits)),
            )
        return self._measurement_plans[key][1]

    def population_engine(self, supercircuit):
        """A population engine bound to this estimator.

        ``config.workers > 1`` returns the multi-process
        :class:`~repro.execution.scheduler.ShardedExecutionEngine` (whose
        worker caches merge back into this estimator's caches each
        generation); otherwise the in-process
        :class:`~repro.execution.ExecutionEngine`.  Callers should ``close()``
        the returned engine when the search is done — a no-op in-process,
        worker-pool shutdown when sharded.
        """
        if getattr(self.config, "workers", 1) > 1:
            from ..execution.scheduler import ShardedExecutionEngine

            return ShardedExecutionEngine(self, supercircuit)
        from ..execution.engine import ExecutionEngine

        return ExecutionEngine(self, supercircuit)

    # -- QML -----------------------------------------------------------------------

    def estimate_qml(
        self,
        circuit: ParameterizedCircuit,
        weights: np.ndarray,
        dataset: Dataset,
        n_classes: int,
        layout=None,
    ) -> float:
        """Predicted validation loss of a QML SubCircuit (lower is better)."""
        self.num_queries += 1
        model = QNNModel.from_circuit(circuit, n_classes)
        features, labels = self.validation_subset(dataset)
        mode = self.resolve_mode(circuit.n_qubits)

        if mode == "noise_free":
            out = model.forward(weights, features)
            return nll_loss(softmax(out.logits), labels)

        if mode == "success_rate":
            out = model.forward(weights, features)
            noise_free = nll_loss(softmax(out.logits), labels)
            compiled = transpile(
                circuit.bind(weights, features[0]),
                self.device,
                initial_layout=layout,
                optimization_level=self.config.optimization_level,
            )
            return noise_free / compiled.success_rate()

        shots = self.config.shots if mode == "real_qc" else 0
        expectations = np.zeros((len(labels), circuit.n_qubits))
        for index, row in enumerate(features):
            result = self._backend.run(
                circuit.bind(weights, row),
                initial_layout=layout,
                optimization_level=self.config.optimization_level,
                shots=shots,
            )
            expectations[index] = result.expectation_z_all()
        logits = model.logits_from_expectations(expectations)
        return nll_loss(softmax(logits), labels)

    def validation_subset(self, dataset: Dataset) -> Tuple[np.ndarray, np.ndarray]:
        n_valid = len(dataset.y_valid)
        count = min(self.config.n_valid_samples, n_valid)
        index = np.arange(count)  # deterministic subset keeps candidates comparable
        return dataset.x_valid[index], dataset.y_valid[index]

    # backwards-compatible alias
    _validation_subset = validation_subset

    # -- VQE -----------------------------------------------------------------------

    def estimate_vqe(
        self,
        ansatz: ParameterizedCircuit,
        weights: np.ndarray,
        molecule: Molecule,
        layout=None,
    ) -> float:
        """Predicted measured energy of a VQE ansatz (lower is better)."""
        self.num_queries += 1
        hamiltonian = self.observable_for(molecule)
        mode = self.resolve_mode(ansatz.n_qubits)

        states = run_parameterized(ansatz, weights)
        noise_free_energy = float(expectation_pauli_sum(states, hamiltonian)[0])
        if mode == "noise_free":
            return noise_free_energy

        bound = ansatz.bind(weights)
        compiled = transpile(
            bound,
            self.device,
            initial_layout=layout,
            optimization_level=self.config.optimization_level,
        )
        if mode in ("success_rate",):
            rate = compiled.success_rate()
            mixed_energy = hamiltonian.constant
            return rate * noise_free_energy + (1.0 - rate) * mixed_energy

        if mode == "real_qc":
            from ..vqe.vqe import VQEModel

            model = VQEModel(
                ansatz,
                molecule,
                measurement_plan=self.measurement_plan_for(molecule, ansatz.n_qubits),
            )
            return model.measure_energy(
                weights,
                self._backend,
                initial_layout=layout,
                optimization_level=self.config.optimization_level,
                shots=self.config.shots,
            )

        # noise_sim: density-matrix expectation with the Hamiltonian remapped to
        # the reduced physical register.
        reduced, used_physical = compiled.reduced_circuit()
        if len(used_physical) > self.config.max_density_qubits:
            rate = compiled.success_rate()
            mixed_energy = hamiltonian.constant
            return rate * noise_free_energy + (1.0 - rate) * mixed_energy
        noise_model = self.device.noise_model().reduced(used_physical)
        simulator = DensityMatrixSimulator(reduced.n_qubits, noise_model)
        rho = simulator.run(reduced)
        remapped = self.remap_hamiltonian(hamiltonian, compiled, used_physical)
        return expectation_pauli_sum_dm(rho, remapped)

    @staticmethod
    def remap_hamiltonian(
        hamiltonian: PauliSum, compiled, used_physical: Sequence[int]
    ) -> PauliSum:
        physical_to_reduced = {phys: i for i, phys in enumerate(used_physical)}
        terms = []
        for term in hamiltonian.terms:
            mapped = {}
            for logical, pauli in term.paulis:
                physical = compiled.final_layout[logical]
                mapped[physical_to_reduced[physical]] = pauli
            terms.append(PauliString.from_dict(term.coefficient, mapped))
        return PauliSum(terms)
