"""The SuperCircuit: the largest circuit of a design space with shared parameters.

The SuperCircuit owns one parameter per gate-angle of the *full* design space.
Sampling a SubCircuit selects a subset of blocks/gates; its gates read (and,
during SuperCircuit training, update) the corresponding subset of the shared
parameters.  After training, any SubCircuit can *inherit* its parameters from
the SuperCircuit, which is what makes the evolutionary search cheap.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..qml.encoders import EncoderSpec, build_encoder_ops
from ..quantum.circuit import ParamOp, ParameterizedCircuit, weight
from ..utils.rng import ensure_rng
from .design_space import DesignSpace
from .subcircuit import SubCircuitConfig

__all__ = ["GateSlot", "SuperCircuit"]


@dataclass(frozen=True)
class GateSlot:
    """One gate position of the SuperCircuit and its shared-parameter indices."""

    block: int
    layer: int
    position: int
    gate: str
    qubits: Tuple[int, ...]
    weight_indices: Tuple[int, ...]


class SuperCircuit:
    """Shared-parameter container for a design space on ``n_qubits`` wires."""

    def __init__(
        self,
        space: DesignSpace,
        n_qubits: int,
        encoder: Optional[EncoderSpec] = None,
        seed: int = 0,
    ) -> None:
        self.space = space
        self.n_qubits = int(n_qubits)
        self.encoder = encoder
        self._slots: List[GateSlot] = []
        next_weight = 0
        for block in range(space.max_blocks):
            for layer_index, layer in enumerate(space.layers):
                for position, qubits in enumerate(layer.positions(self.n_qubits)):
                    indices = tuple(
                        range(next_weight, next_weight + layer.params_per_gate)
                    )
                    next_weight += layer.params_per_gate
                    self._slots.append(
                        GateSlot(block, layer_index, position, layer.gate, qubits, indices)
                    )
        self.num_parameters = next_weight
        rng = ensure_rng(seed)
        self.parameters = rng.uniform(-np.pi, np.pi, size=self.num_parameters)

    # -- slot selection ----------------------------------------------------------

    def all_slots(self) -> List[GateSlot]:
        return list(self._slots)

    def active_slots(self, config: SubCircuitConfig) -> List[GateSlot]:
        """Slots kept by ``config`` (front sampling: the first ``width`` positions)."""
        if config.n_blocks > self.space.max_blocks:
            raise ValueError("config has more blocks than the design space allows")
        active = []
        for slot in self._slots:
            if slot.block >= config.n_blocks:
                continue
            if slot.position < config.layer_width(slot.block, slot.layer):
                active.append(slot)
        return active

    def active_weight_mask(self, config: SubCircuitConfig) -> np.ndarray:
        """Boolean mask over the shared parameters touched by ``config``."""
        mask = np.zeros(self.num_parameters, dtype=bool)
        for slot in self.active_slots(config):
            for index in slot.weight_indices:
                mask[index] = True
        return mask

    # -- circuit construction ------------------------------------------------------

    def _structural_ops(self, slots: Sequence[GateSlot], index_of) -> List[ParamOp]:
        """ParamOps for the given slots, mapping weights through ``index_of``."""
        ops: List[ParamOp] = []
        for slot in slots:
            if slot.weight_indices:
                slots_params = tuple(weight(index_of(i)) for i in slot.weight_indices)
                ops.append(ParamOp(slot.gate, slot.qubits, slots_params))
            else:
                ops.append(ParamOp(slot.gate, slot.qubits))
        return ops

    def _prefix_ops(self) -> List[ParamOp]:
        ops: List[ParamOp] = []
        for layer in self.space.prefix_layers:
            for qubits in layer.positions(self.n_qubits):
                ops.append(ParamOp(layer.gate, qubits))
        return ops

    def build_shared_circuit(
        self, config: SubCircuitConfig, include_encoder: bool = True
    ) -> ParameterizedCircuit:
        """A SubCircuit whose weight slots index directly into the shared parameters.

        Used during SuperCircuit training: gradients come back in the shared
        parameter space and only the active subset is updated.
        """
        pcirc = ParameterizedCircuit(self.n_qubits)
        if include_encoder and self.encoder is not None:
            for op in build_encoder_ops(self.encoder):
                pcirc.add_op(op)
        for op in self._prefix_ops():
            pcirc.add_op(op)
        for op in self._structural_ops(self.active_slots(config), lambda i: i):
            pcirc.add_op(op)
        pcirc.ensure_num_weights(self.num_parameters)
        return pcirc

    def build_standalone_circuit(
        self, config: SubCircuitConfig, include_encoder: bool = True
    ) -> Tuple[ParameterizedCircuit, np.ndarray]:
        """A SubCircuit with its own compact weight vector.

        Returns the circuit and an integer array mapping each compact weight
        index to the SuperCircuit parameter it corresponds to, so parameters
        can be inherited (``weights = supercircuit.parameters[mapping]``) or
        the SubCircuit can be retrained from scratch.
        """
        slots = self.active_slots(config)
        global_indices: List[int] = []
        compact_of: dict[int, int] = {}
        for slot in slots:
            for index in slot.weight_indices:
                if index not in compact_of:
                    compact_of[index] = len(global_indices)
                    global_indices.append(index)
        pcirc = ParameterizedCircuit(self.n_qubits)
        if include_encoder and self.encoder is not None:
            for op in build_encoder_ops(self.encoder):
                pcirc.add_op(op)
        for op in self._prefix_ops():
            pcirc.add_op(op)
        for op in self._structural_ops(slots, lambda i: compact_of[i]):
            pcirc.add_op(op)
        pcirc.ensure_num_weights(len(global_indices))
        return pcirc, np.array(global_indices, dtype=int)

    def inherited_weights(self, config: SubCircuitConfig) -> np.ndarray:
        """Parameters a SubCircuit inherits from the trained SuperCircuit."""
        _circuit, mapping = self.build_standalone_circuit(config)
        return self.parameters[mapping].copy()

    # -- bookkeeping ---------------------------------------------------------------

    def update_parameters(self, new_values: np.ndarray) -> None:
        new_values = np.asarray(new_values, dtype=float)
        if new_values.shape != (self.num_parameters,):
            raise ValueError("parameter vector has the wrong shape")
        self.parameters = new_values.copy()

    def __repr__(self) -> str:
        return (
            f"SuperCircuit(space='{self.space.name}', n_qubits={self.n_qubits}, "
            f"num_parameters={self.num_parameters})"
        )
