"""SubCircuit configurations: which blocks and gates of the SuperCircuit are kept."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from .design_space import DesignSpace

__all__ = ["SubCircuitConfig"]


@dataclass(frozen=True)
class SubCircuitConfig:
    """A point in the design space.

    ``n_blocks`` is the number of (front) blocks kept; ``widths[b][l]`` is the
    number of gates kept in layer ``l`` of block ``b`` (always stored for every
    block up to ``max_blocks`` so restricted sampling can compare configs
    position-wise).  With front sampling, the kept gates are the first
    ``widths[b][l]`` positions of the layer.
    """

    n_blocks: int
    widths: Tuple[Tuple[int, ...], ...]

    def __post_init__(self) -> None:
        if self.n_blocks < 1:
            raise ValueError("a SubCircuit needs at least one block")
        if self.n_blocks > len(self.widths):
            raise ValueError("n_blocks exceeds the number of stored block widths")
        object.__setattr__(
            self, "widths", tuple(tuple(int(w) for w in block) for block in self.widths)
        )

    # -- constructors ----------------------------------------------------------

    @staticmethod
    def full(space: DesignSpace, n_qubits: int,
             n_blocks: Optional[int] = None) -> "SubCircuitConfig":
        """The configuration with every gate present (the SuperCircuit itself)."""
        max_widths = space.max_widths(n_qubits)
        blocks = n_blocks if n_blocks is not None else space.max_blocks
        widths = tuple(tuple(max_widths) for _ in range(space.max_blocks))
        return SubCircuitConfig(blocks, widths)

    @staticmethod
    def uniform_width(
        space: DesignSpace, n_qubits: int, n_blocks: int, width_ratio: float
    ) -> "SubCircuitConfig":
        """A config with every layer at ``ratio`` of its maximum width."""
        max_widths = space.max_widths(n_qubits)
        row = tuple(
            max(space.min_width, int(round(ratio_width * width_ratio)))
            for ratio_width in max_widths
        )
        widths = tuple(row for _ in range(space.max_blocks))
        return SubCircuitConfig(n_blocks, widths)

    # -- inspection -------------------------------------------------------------

    def active_widths(self) -> Tuple[Tuple[int, ...], ...]:
        return self.widths[: self.n_blocks]

    def layer_width(self, block: int, layer: int) -> int:
        return self.widths[block][layer]

    def num_gates(self, space: DesignSpace) -> int:
        """Number of gates in the active blocks."""
        return sum(sum(block) for block in self.active_widths())

    def num_parameters(self, space: DesignSpace) -> int:
        total = 0
        for block in self.active_widths():
            for layer_index, width in enumerate(block):
                total += width * space.layers[layer_index].params_per_gate
        return total

    def difference(self, other: "SubCircuitConfig") -> int:
        """Number of (block, layer) positions whose width differs.

        This is the quantity restricted sampling bounds between consecutive
        SuperCircuit training steps.
        """
        count = 0 if self.n_blocks == other.n_blocks else 1
        for block_a, block_b in zip(self.widths, other.widths):
            for width_a, width_b in zip(block_a, block_b):
                if width_a != width_b:
                    count += 1
        return count

    def as_gene(self) -> List[int]:
        """Flatten to the circuit sub-gene used by the evolutionary search."""
        gene = [self.n_blocks]
        for block in self.widths:
            gene.extend(block)
        return gene

    @staticmethod
    def from_gene(space: DesignSpace, n_qubits: int, gene: Sequence[int]):
        """Inverse of :meth:`as_gene`."""
        n_layers = space.n_layers
        expected = 1 + space.max_blocks * n_layers
        if len(gene) != expected:
            raise ValueError(
                f"gene of length {len(gene)} does not match design space "
                f"(expected {expected})"
            )
        n_blocks = int(np.clip(gene[0], 1, space.max_blocks))
        max_widths = space.max_widths(n_qubits)
        widths = []
        cursor = 1
        for _block in range(space.max_blocks):
            row = []
            for layer in range(n_layers):
                value = int(np.clip(gene[cursor], space.min_width, max_widths[layer]))
                row.append(value)
                cursor += 1
            widths.append(tuple(row))
        return SubCircuitConfig(n_blocks, tuple(widths))
