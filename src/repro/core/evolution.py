"""Evolutionary co-search of SubCircuit and qubit mapping.

The gene concatenates the circuit sub-gene (number of blocks + per-layer
widths) with the qubit-mapping sub-gene (one physical qubit per logical
qubit).  Each iteration evaluates the population with the performance
estimator, keeps the best candidates as parents, and produces the next
population from mutations and crossovers, repairing any duplicated physical
qubits exactly as described in Section III-C.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..devices.library import Device
from ..utils.rng import ensure_rng
from .design_space import DesignSpace
from .subcircuit import SubCircuitConfig

if TYPE_CHECKING:
    from .checkpoint import SearchCheckpointer

__all__ = ["Candidate", "EvolutionConfig", "EvolutionResult", "EvolutionEngine",
           "SearchRun", "PopulationScoreFn", "random_search"]


@dataclass(frozen=True)
class Candidate:
    """One (SubCircuit configuration, qubit mapping) pair."""

    config: SubCircuitConfig
    mapping: Tuple[int, ...]

    def gene(self) -> List[int]:
        return self.config.as_gene() + list(self.mapping)


@dataclass
class EvolutionConfig:
    """Search hyper-parameters (paper defaults: 40 iterations, population 40)."""

    iterations: int = 40
    population_size: int = 40
    parent_size: int = 10
    mutation_size: int = 20
    mutation_probability: float = 0.4
    crossover_size: int = 10
    seed: int = 0
    search_mapping: bool = True       # co-search qubit mapping with the circuit
    search_circuit: bool = True       # disable to search the mapping only
    #: persist search state here after every generation and resume from it
    #: when the file exists (see :mod:`repro.core.checkpoint`); None disables
    checkpoint_path: Optional[str] = None


@dataclass
class EvolutionResult:
    """Best candidate found plus the per-iteration search trace."""

    best: Candidate
    best_score: float
    history: List[Dict[str, float]] = field(default_factory=list)
    evaluated: int = 0


ScoreFn = Callable[[SubCircuitConfig, Tuple[int, ...]], float]
#: scores a whole population at once (see repro.execution.ExecutionEngine);
#: must return one lower-is-better score per candidate, in order
PopulationScoreFn = Callable[[Sequence["Candidate"]], Sequence[float]]


class EvolutionEngine:
    """Genetic search over the joint circuit / qubit-mapping space."""

    def __init__(
        self,
        space: DesignSpace,
        n_qubits: int,
        device: Device,
        config: Optional[EvolutionConfig] = None,
        fixed_config: Optional[SubCircuitConfig] = None,
        fixed_mapping: Optional[Sequence[int]] = None,
    ) -> None:
        self.space = space
        self.n_qubits = int(n_qubits)
        self.device = device
        self.config = config or EvolutionConfig()
        self.rng = ensure_rng(self.config.seed)
        self.max_widths = space.max_widths(self.n_qubits)
        if self.n_qubits > device.n_qubits:
            raise ValueError("circuit does not fit on the device")
        self.fixed_config = fixed_config
        self.fixed_mapping = tuple(fixed_mapping) if fixed_mapping is not None else None

    # -- candidate generation ------------------------------------------------------

    def random_mapping(self) -> Tuple[int, ...]:
        if self.fixed_mapping is not None or not self.config.search_mapping:
            return self.fixed_mapping or tuple(range(self.n_qubits))
        physical = self.rng.permutation(self.device.n_qubits)[: self.n_qubits]
        return tuple(int(q) for q in physical)

    def random_config(self) -> SubCircuitConfig:
        if self.fixed_config is not None or not self.config.search_circuit:
            return self.fixed_config or SubCircuitConfig.full(self.space, self.n_qubits)
        n_blocks = int(self.rng.integers(1, self.space.max_blocks + 1))
        widths = tuple(
            tuple(
                int(self.rng.integers(self.space.min_width, w + 1))
                for w in self.max_widths
            )
            for _ in range(self.space.max_blocks)
        )
        return SubCircuitConfig(n_blocks, widths)

    def random_candidate(self) -> Candidate:
        return Candidate(self.random_config(), self.random_mapping())

    def candidate_from_gene(self, gene: Sequence[int]) -> Candidate:
        """Rebuild a candidate from its serialized gene (checkpoint format)."""
        circuit_len = 1 + self.space.max_blocks * self.space.n_layers
        config = SubCircuitConfig.from_gene(
            self.space, self.n_qubits, list(gene[:circuit_len])
        )
        return Candidate(config, tuple(int(q) for q in gene[circuit_len:]))

    # -- genetic operators -----------------------------------------------------------

    def repair_mapping(self, mapping: Sequence[int]) -> Tuple[int, ...]:
        """Replace repeated physical qubits with the first unused ones."""
        seen: set[int] = set()
        repaired: List[int] = []
        for physical in mapping:
            physical = int(physical) % self.device.n_qubits
            if physical in seen:
                replacement = next(
                    q for q in range(self.device.n_qubits) if q not in seen
                )
                physical = replacement
            seen.add(physical)
            repaired.append(physical)
        return tuple(repaired)

    def mutate(self, candidate: Candidate) -> Candidate:
        probability = self.config.mutation_probability
        config = candidate.config
        if self.config.search_circuit and self.fixed_config is None:
            widths = [list(block) for block in config.widths]
            for block in range(self.space.max_blocks):
                for layer in range(self.space.n_layers):
                    if self.rng.random() < probability:
                        widths[block][layer] = int(
                            self.rng.integers(
                                self.space.min_width, self.max_widths[layer] + 1
                            )
                        )
            n_blocks = config.n_blocks
            if self.rng.random() < probability:
                n_blocks = int(self.rng.integers(1, self.space.max_blocks + 1))
            config = SubCircuitConfig(n_blocks, tuple(tuple(b) for b in widths))
        mapping = list(candidate.mapping)
        if self.config.search_mapping and self.fixed_mapping is None:
            for index in range(len(mapping)):
                if self.rng.random() < probability:
                    mapping[index] = int(self.rng.integers(0, self.device.n_qubits))
            mapping = list(self.repair_mapping(mapping))
        return Candidate(config, tuple(mapping))

    def crossover(self, parent_a: Candidate, parent_b: Candidate) -> Candidate:
        gene_a = parent_a.gene()
        gene_b = parent_b.gene()
        child_gene = [
            gene_a[i] if self.rng.random() < 0.5 else gene_b[i]
            for i in range(len(gene_a))
        ]
        circuit_len = 1 + self.space.max_blocks * self.space.n_layers
        config = SubCircuitConfig.from_gene(
            self.space, self.n_qubits, child_gene[:circuit_len]
        )
        mapping = self.repair_mapping(child_gene[circuit_len:])
        if self.fixed_config is not None or not self.config.search_circuit:
            config = self.fixed_config or config
        if self.fixed_mapping is not None or not self.config.search_mapping:
            mapping = self.fixed_mapping or mapping
        return Candidate(config, mapping)

    # -- main loop ----------------------------------------------------------------------

    def start_search(
        self,
        score_fn: Optional[ScoreFn] = None,
        verbose: bool = False,
        population_score_fn: Optional[PopulationScoreFn] = None,
        checkpointer: Optional["SearchCheckpointer"] = None,
    ) -> "SearchRun":
        """A :class:`SearchRun` stepping this search one generation at a time.

        ``search()`` is ``start_search(...)`` driven to completion; callers
        that need to interleave several searches (the multi-tenant
        :mod:`repro.service` scheduler) call :meth:`SearchRun.step`
        themselves.  The run restores checkpoint state on construction, so
        suspending after any ``step()`` and rebuilding the run later resumes
        bitwise.
        """
        return SearchRun(
            self,
            score_fn=score_fn,
            verbose=verbose,
            population_score_fn=population_score_fn,
            checkpointer=checkpointer,
        )

    def search(
        self,
        score_fn: Optional[ScoreFn] = None,
        verbose: bool = False,
        population_score_fn: Optional[PopulationScoreFn] = None,
        checkpointer: Optional["SearchCheckpointer"] = None,
    ) -> EvolutionResult:
        """Run the evolutionary search (scores are lower-is-better).

        Scoring goes through exactly one of two interfaces: ``score_fn``
        evaluates one ``(config, mapping)`` at a time, while
        ``population_score_fn`` receives every not-yet-cached candidate of a
        generation at once — the hook the batched
        :class:`~repro.execution.ExecutionEngine` plugs into.

        ``checkpointer`` (see :mod:`repro.core.checkpoint`) persists the
        search state after every completed generation and, when its file
        already holds a checkpoint, resumes from it bitwise — same
        populations, same rng stream, same history tail as the
        uninterrupted run.
        """
        run = self.start_search(
            score_fn=score_fn,
            verbose=verbose,
            population_score_fn=population_score_fn,
            checkpointer=checkpointer,
        )
        while run.step():
            pass
        return run.result()


class SearchRun:
    """One evolutionary search, advanced one generation per :meth:`step`.

    Owns the full loop state ``EvolutionEngine.search`` used to keep in
    locals: population, gene→score cache, history, best candidate and the
    iteration cursor.  The constructor reproduces ``search()``'s setup
    exactly — the initial population is drawn (consuming the engine rng)
    *before* any checkpoint overrides population and rng state — so driving
    a run to completion is bitwise identical to the monolithic loop, and a
    run interleaved with other tenants' runs scores the same populations as
    one run alone.
    """

    def __init__(
        self,
        engine: EvolutionEngine,
        score_fn: Optional[ScoreFn] = None,
        verbose: bool = False,
        population_score_fn: Optional[PopulationScoreFn] = None,
        checkpointer: Optional["SearchCheckpointer"] = None,
    ) -> None:
        if (score_fn is None) == (population_score_fn is None):
            raise ValueError(
                "provide exactly one of score_fn or population_score_fn"
            )
        self.engine = engine
        self.score_fn = score_fn
        self.population_score_fn = population_score_fn
        self.checkpointer = checkpointer
        self.verbose = verbose
        self.population: List[Candidate] = [
            engine.random_candidate()
            for _ in range(engine.config.population_size)
        ]
        self.cache: Dict[Tuple[int, ...], float] = {}
        self.history: List[Dict[str, float]] = []
        self.evaluated = 0
        self.best: Optional[Candidate] = None
        self.best_score = float("inf")
        self.iteration = 0

        if checkpointer is not None:
            state = checkpointer.load()
            if state is not None:
                self.iteration = int(state["iteration"])
                engine.rng.bit_generator.state = state["rng_state"]
                self.population = [
                    engine.candidate_from_gene(gene)
                    for gene in state["population"]
                ]
                self.cache = {
                    tuple(gene): score for gene, score in state["cache"]
                }
                self.history = list(state["history"])
                self.evaluated = int(state["evaluated"])
                self.best_score = float(state["best_score"])
                if state["best"] is not None:
                    self.best = engine.candidate_from_gene(state["best"])

    @property
    def done(self) -> bool:
        return self.iteration >= self.engine.config.iterations

    def step(self) -> bool:
        """Run one generation; ``False`` when the search is already done."""
        if self.done:
            return False
        engine = self.engine
        iteration = self.iteration
        if self.population_score_fn is not None:
            pending: List[Candidate] = []
            seen: set = set()
            for candidate in self.population:
                key = tuple(candidate.gene())
                if key not in self.cache and key not in seen:
                    seen.add(key)
                    pending.append(candidate)
            if pending:
                scores = self.population_score_fn(pending)
                if len(scores) != len(pending):
                    raise ValueError(
                        "population_score_fn returned "
                        f"{len(scores)} scores for {len(pending)} candidates"
                    )
                for candidate, score in zip(pending, scores):
                    self.cache[tuple(candidate.gene())] = float(score)
                self.evaluated += len(pending)
        scored: List[Tuple[float, Candidate]] = []
        for candidate in self.population:
            key = tuple(candidate.gene())
            if key not in self.cache:
                self.cache[key] = float(
                    self.score_fn(candidate.config, candidate.mapping)
                )
                self.evaluated += 1
            scored.append((self.cache[key], candidate))
        scored.sort(key=lambda item: item[0])
        if scored[0][0] < self.best_score:
            self.best_score, self.best = scored[0]
        self.history.append(
            {
                "iteration": iteration,
                "best_score": self.best_score,
                "population_best": scored[0][0],
                "population_mean": float(np.mean([s for s, _c in scored])),
            }
        )
        if self.verbose:
            print(
                f"[evolution] iter {iteration:3d} best={self.best_score:.4f} "
                f"mean={self.history[-1]['population_mean']:.4f}"
            )
        parents = [
            candidate for _score, candidate in scored[: engine.config.parent_size]
        ]
        mutations = [
            engine.mutate(parents[int(engine.rng.integers(0, len(parents)))])
            for _ in range(engine.config.mutation_size)
        ]
        crossovers = [
            engine.crossover(
                parents[int(engine.rng.integers(0, len(parents)))],
                parents[int(engine.rng.integers(0, len(parents)))],
            )
            for _ in range(engine.config.crossover_size)
        ]
        self.population = parents + mutations + crossovers
        self.iteration = iteration + 1
        if self.checkpointer is not None:
            self.checkpointer.save(
                {
                    "iteration": self.iteration,
                    "rng_state": engine.rng.bit_generator.state,
                    "population": [c.gene() for c in self.population],
                    "cache": [
                        (list(gene), score) for gene, score in self.cache.items()
                    ],
                    "history": list(self.history),
                    "evaluated": self.evaluated,
                    "best": self.best.gene() if self.best is not None else None,
                    "best_score": self.best_score,
                }
            )
        return True

    def result(self) -> EvolutionResult:
        """The search outcome (valid once at least one generation ran)."""
        assert self.best is not None
        return EvolutionResult(
            best=self.best,
            best_score=self.best_score,
            history=self.history,
            evaluated=self.evaluated,
        )


def random_search(
    space: DesignSpace,
    n_qubits: int,
    device: Device,
    score_fn: ScoreFn,
    n_samples: int,
    seed: int = 0,
    search_mapping: bool = True,
) -> EvolutionResult:
    """Pure random search baseline over the same joint space (Fig. 22)."""
    engine = EvolutionEngine(
        space,
        n_qubits,
        device,
        EvolutionConfig(seed=seed, search_mapping=search_mapping),
    )
    best = None
    best_score = float("inf")
    history = []
    for index in range(n_samples):
        candidate = engine.random_candidate()
        score = float(score_fn(candidate.config, candidate.mapping))
        if score < best_score:
            best_score, best = score, candidate
        history.append({"iteration": index, "best_score": best_score,
                        "population_best": score, "population_mean": score})
    assert best is not None
    return EvolutionResult(best=best, best_score=best_score, history=history,
                           evaluated=n_samples)
