"""End-to-end QuantumNAS pipelines for QML and VQE.

Each pipeline runs the five stages of Fig. 5: (1) SuperCircuit training,
(2) noise-adaptive evolutionary co-search of SubCircuit and qubit mapping,
(3) SubCircuit training from scratch, (4) iterative pruning + finetuning, and
(5) compile-and-deploy evaluation on the noisy backend.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..devices.backend import QuantumBackend
from ..devices.library import Device
from ..qml.datasets import Dataset
from ..qml.encoders import EncoderSpec
from ..qml.evaluation import evaluate_on_backend
from ..qml.qnn import QNNModel
from ..qml.training import TrainConfig, evaluate_noise_free
from ..utils.rng import ensure_rng
from ..vqe.molecules import Molecule
from ..vqe.vqe import VQEConfig, VQEModel
from .checkpoint import SearchCheckpointer
from .design_space import DesignSpace
from .estimator import EstimatorConfig, PerformanceEstimator
from .evolution import EvolutionConfig, EvolutionEngine, EvolutionResult
from .pruning import PruningResult, iterative_prune_qnn, iterative_prune_vqe
from .subcircuit import SubCircuitConfig
from .supercircuit import SuperCircuit
from .trainer import (
    SuperTrainConfig,
    train_subcircuit_qml,
    train_subcircuit_vqe,
    train_supercircuit_qml,
    train_supercircuit_vqe,
)

__all__ = [
    "QMLPipelineConfig",
    "QMLPipelineResult",
    "QuantumNASQMLPipeline",
    "VQEPipelineConfig",
    "VQEPipelineResult",
    "QuantumNASVQEPipeline",
]


def _search_checkpointer(config, estimator) -> Optional[SearchCheckpointer]:
    """The co-search checkpointer named by ``evolution.checkpoint_path``.

    Ties the checkpoint to the pipeline's shared estimator, so merged
    transpile/parametric cache entries persist alongside the search state
    and a resumed search starts compilation-warm.
    """
    path = getattr(config.evolution, "checkpoint_path", None)
    if not path:
        return None
    return SearchCheckpointer(path, estimator=estimator)


# ---------------------------------------------------------------------------
# QML pipeline
# ---------------------------------------------------------------------------


@dataclass
class QMLPipelineConfig:
    """Budgets for every stage of the QML pipeline (scaled-down defaults)."""

    super_train: SuperTrainConfig = field(default_factory=lambda: SuperTrainConfig(steps=60))
    evolution: EvolutionConfig = field(
        default_factory=lambda: EvolutionConfig(iterations=8, population_size=16,
                                                parent_size=4, mutation_size=8,
                                                crossover_size=4)
    )
    estimator: EstimatorConfig = field(
        default_factory=lambda: EstimatorConfig(n_valid_samples=16)
    )
    sub_train: TrainConfig = field(default_factory=lambda: TrainConfig(epochs=20))
    pruning_ratio: Optional[float] = 0.3
    finetune_epochs: int = 5
    eval_shots: int = 2048
    eval_max_samples: int = 60
    seed: int = 0


@dataclass
class QMLPipelineResult:
    """Artifacts of a full QuantumNAS QML run."""

    supercircuit: SuperCircuit
    search: EvolutionResult
    best_config: SubCircuitConfig
    best_mapping: Tuple[int, ...]
    model: QNNModel
    weights: np.ndarray
    pruning: Optional[PruningResult]
    noise_free: Dict[str, float]
    measured: Dict[str, float]
    measured_pruned: Optional[Dict[str, float]]


class QuantumNASQMLPipeline:
    """Runs the five QuantumNAS stages for one QML task on one device."""

    def __init__(
        self,
        space: DesignSpace,
        dataset: Dataset,
        n_classes: int,
        device: Device,
        encoder: EncoderSpec,
        n_qubits: Optional[int] = None,
        config: Optional[QMLPipelineConfig] = None,
    ) -> None:
        self.space = space
        self.dataset = dataset
        self.n_classes = int(n_classes)
        self.device = device
        self.encoder = encoder
        self.n_qubits = int(n_qubits or encoder.n_qubits)
        self.config = config or QMLPipelineConfig()
        self.supercircuit = SuperCircuit(
            space, self.n_qubits, encoder=encoder, seed=self.config.seed
        )
        # One estimator for the whole pipeline: its transpile caches persist
        # across co-search restarts and are handed to the deploy/evaluate
        # backend, so stage 5 reuses (and extends) the search's compilations
        # instead of starting cold.
        self.estimator = PerformanceEstimator(self.device, self.config.estimator)

    # -- stages ----------------------------------------------------------------

    def train_supercircuit(self):
        return train_supercircuit_qml(
            self.supercircuit,
            self.dataset,
            self.n_classes,
            self.config.super_train,
        )

    def co_search(self) -> EvolutionResult:
        engine = EvolutionEngine(
            self.space, self.n_qubits, self.device, self.config.evolution
        )
        # Populations are submitted through the execution engine, which
        # batches them (sharding across worker processes when
        # ``EstimatorConfig.workers > 1``, dispatching each structure group
        # to a simulation backend per ``EstimatorConfig.backend`` /
        # ``REPRO_BACKEND``) or replays the per-candidate seed path when
        # ``EstimatorConfig.engine == "sequential"``.  Either way the
        # compilations land in the estimator-owned caches that stage 5
        # reuses, so the sharded engine's worker pool can be shut down as
        # soon as the search returns — the context manager guarantees that
        # even when the search raises.
        with self.estimator.population_engine(self.supercircuit) as execution:
            return engine.search(
                population_score_fn=execution.qml_population_scorer(
                    self.dataset, self.n_classes
                ),
                checkpointer=_search_checkpointer(self.config, self.estimator),
            )

    def co_search_job(
        self,
        name: str,
        priority: int = 0,
        deadline: Optional[float] = None,
    ):
        """This pipeline's co-search stage as a service-schedulable job.

        Submit the returned :class:`~repro.service.SearchJob` to a
        :class:`~repro.service.CoSearchService` to run stage 2 alongside
        other tenants on shared workers.  The job carries the pipeline's
        (typically trained) supercircuit and its warm estimator, so the
        service run feeds the same caches stage 5 reuses — and its scores
        are bitwise identical to :meth:`co_search`.
        """
        from ..service import SearchJob  # service imports core; stay lazy

        return SearchJob(
            name=name,
            kind="qml",
            space=self.space,
            device=self.device,
            n_qubits=self.n_qubits,
            evolution=self.config.evolution,
            estimator=self.estimator,
            dataset=self.dataset,
            n_classes=self.n_classes,
            encoder=self.encoder,
            supercircuit=self.supercircuit,
            priority=priority,
            deadline=deadline,
            checkpoint_path=getattr(
                self.config.evolution, "checkpoint_path", None
            ),
        )

    def train_best(self, sub_config: SubCircuitConfig):
        return train_subcircuit_qml(
            self.supercircuit,
            sub_config,
            self.dataset,
            self.n_classes,
            self.config.sub_train,
        )

    def evaluate(
        self, model: QNNModel, weights: np.ndarray, mapping: Tuple[int, ...]
    ) -> Dict[str, float]:
        backend = QuantumBackend(
            self.device,
            shots=self.config.eval_shots,
            seed=self.config.seed,
            transpile_cache=self.estimator.transpile_cache,
            parametric_cache=self.estimator.parametric_transpile_cache,
        )
        return evaluate_on_backend(
            model,
            weights,
            self.dataset.x_test,
            self.dataset.y_test,
            backend,
            initial_layout=mapping,
            max_samples=self.config.eval_max_samples,
        )

    # -- end to end ----------------------------------------------------------------

    def run(self, verbose: bool = False) -> QMLPipelineResult:
        if verbose:
            print(f"[quantumnas] stage 1: SuperCircuit training ({self.space.name})")
        self.train_supercircuit()

        if verbose:
            print("[quantumnas] stage 2: evolutionary co-search")
        search = self.co_search()
        best_config = search.best.config
        best_mapping = search.best.mapping

        if verbose:
            print("[quantumnas] stage 3: SubCircuit training from scratch")
        model, train_result = self.train_best(best_config)
        weights = train_result.weights

        noise_free = evaluate_noise_free(
            model, weights, self.dataset.x_test, self.dataset.y_test
        )
        if verbose:
            print("[quantumnas] stage 5: deploy and measure (unpruned)")
        measured = self.evaluate(model, weights, best_mapping)

        pruning = None
        measured_pruned = None
        if self.config.pruning_ratio and model.num_weights > 4:
            if verbose:
                print("[quantumnas] stage 4: iterative pruning + finetuning")
            pruning = iterative_prune_qnn(
                model,
                weights,
                self.dataset,
                final_ratio=self.config.pruning_ratio,
                finetune_epochs=self.config.finetune_epochs,
                train_config=self.config.sub_train,
            )
            measured_pruned = self.evaluate(model, pruning.weights, best_mapping)

        return QMLPipelineResult(
            supercircuit=self.supercircuit,
            search=search,
            best_config=best_config,
            best_mapping=best_mapping,
            model=model,
            weights=weights,
            pruning=pruning,
            noise_free=noise_free,
            measured=measured,
            measured_pruned=measured_pruned,
        )


# ---------------------------------------------------------------------------
# VQE pipeline
# ---------------------------------------------------------------------------


@dataclass
class VQEPipelineConfig:
    """Budgets for the VQE pipeline."""

    super_train: SuperTrainConfig = field(
        default_factory=lambda: SuperTrainConfig(steps=80, batch_size=1)
    )
    evolution: EvolutionConfig = field(
        default_factory=lambda: EvolutionConfig(iterations=8, population_size=16,
                                                parent_size=4, mutation_size=8,
                                                crossover_size=4)
    )
    estimator: EstimatorConfig = field(default_factory=EstimatorConfig)
    vqe_train: VQEConfig = field(default_factory=lambda: VQEConfig(steps=120))
    pruning_ratio: Optional[float] = 0.5
    finetune_steps: int = 40
    eval_shots: int = 2048
    seed: int = 0


@dataclass
class VQEPipelineResult:
    """Artifacts of a full QuantumNAS VQE run."""

    supercircuit: SuperCircuit
    search: EvolutionResult
    best_config: SubCircuitConfig
    best_mapping: Tuple[int, ...]
    model: VQEModel
    weights: np.ndarray
    pruning: Optional[PruningResult]
    noise_free_energy: float
    measured_energy: float
    measured_energy_pruned: Optional[float]


class QuantumNASVQEPipeline:
    """Runs the QuantumNAS stages for one molecule on one device."""

    def __init__(
        self,
        space: DesignSpace,
        molecule: Molecule,
        device: Device,
        n_qubits: Optional[int] = None,
        config: Optional[VQEPipelineConfig] = None,
    ) -> None:
        self.space = space
        self.molecule = molecule
        self.device = device
        self.n_qubits = int(n_qubits or molecule.n_qubits)
        self.config = config or VQEPipelineConfig()
        self.supercircuit = SuperCircuit(
            space, self.n_qubits, encoder=None, seed=self.config.seed
        )
        # shared estimator: transpile caches persist across pipeline stages
        self.estimator = PerformanceEstimator(self.device, self.config.estimator)

    def co_search(self) -> EvolutionResult:
        engine = EvolutionEngine(
            self.space, self.n_qubits, self.device, self.config.evolution
        )
        # see QuantumNASQMLPipeline.co_search — worker caches merge into the
        # shared estimator before the context manager closes the pool
        with self.estimator.population_engine(self.supercircuit) as execution:
            return engine.search(
                population_score_fn=execution.vqe_population_scorer(self.molecule),
                checkpointer=_search_checkpointer(self.config, self.estimator),
            )

    def co_search_job(
        self,
        name: str,
        priority: int = 0,
        deadline: Optional[float] = None,
    ):
        """This pipeline's co-search stage as a service-schedulable job.

        See :meth:`QuantumNASQMLPipeline.co_search_job` — same contract,
        VQE task family.
        """
        from ..service import SearchJob  # service imports core; stay lazy

        return SearchJob(
            name=name,
            kind="vqe",
            space=self.space,
            device=self.device,
            n_qubits=self.n_qubits,
            evolution=self.config.evolution,
            estimator=self.estimator,
            molecule=self.molecule,
            supercircuit=self.supercircuit,
            priority=priority,
            deadline=deadline,
            checkpoint_path=getattr(
                self.config.evolution, "checkpoint_path", None
            ),
        )

    def measure(
        self, model: VQEModel, weights: np.ndarray, mapping: Tuple[int, ...]
    ) -> float:
        backend = QuantumBackend(
            self.device,
            shots=self.config.eval_shots,
            seed=self.config.seed,
            transpile_cache=self.estimator.transpile_cache,
        )
        return model.measure_energy(
            weights, backend, initial_layout=mapping, shots=self.config.eval_shots
        )

    def run(self, verbose: bool = False) -> VQEPipelineResult:
        if verbose:
            print(f"[quantumnas] stage 1: SuperCircuit training ({self.space.name})")
        train_supercircuit_vqe(self.supercircuit, self.molecule, self.config.super_train)

        if verbose:
            print("[quantumnas] stage 2: evolutionary co-search")
        search = self.co_search()
        best_config = search.best.config
        best_mapping = search.best.mapping

        if verbose:
            print("[quantumnas] stage 3: SubCircuit training from scratch")
        model, result = train_subcircuit_vqe(
            self.supercircuit, best_config, self.molecule, self.config.vqe_train
        )
        weights = result.weights
        noise_free_energy = model.energy(weights)

        if verbose:
            print("[quantumnas] stage 5: deploy and measure (unpruned)")
        measured_energy = self.measure(model, weights, best_mapping)

        pruning = None
        measured_pruned = None
        if self.config.pruning_ratio and model.num_weights > 2:
            if verbose:
                print("[quantumnas] stage 4: iterative pruning + finetuning")
            pruning = iterative_prune_vqe(
                model,
                weights,
                final_ratio=self.config.pruning_ratio,
                finetune_steps=self.config.finetune_steps,
                vqe_config=self.config.vqe_train,
            )
            measured_pruned = self.measure(model, pruning.weights, best_mapping)

        return VQEPipelineResult(
            supercircuit=self.supercircuit,
            search=search,
            best_config=best_config,
            best_mapping=best_mapping,
            model=model,
            weights=weights,
            pruning=pruning,
            noise_free_energy=noise_free_energy,
            measured_energy=measured_energy,
            measured_energy_pruned=measured_pruned,
        )
