"""Generation-level checkpoint/resume for the evolutionary co-search.

A multi-hour search should not restart from scratch because the *search
process* died — worker faults are already absorbed by the resilience layer
(:mod:`repro.execution.resilience`), and this module covers the remaining
failure domain: the parent process itself.

:class:`SearchCheckpointer` persists, after every completed generation:

- the iteration index the search should resume at,
- the evolution rng's exact bit-generator state,
- the current population and the best candidate as **genes** (plain int
  lists — the stable serialization the design space already defines),
- the gene→score cache, history and evaluated count,
- optionally, the owning estimator's merged transpile/parametric cache
  entries, so a resumed search starts compilation-warm exactly like a
  surviving parent would have.

Resume is bitwise: the rng state, cache contents and population are
restored exactly, so a search resumed at generation *k* produces the same
best candidate, scores and history tail as the uninterrupted run — the
checkpoint tests assert equality, not closeness.

File format (version 1): a single :mod:`pickle` payload ``{"version": 1,
"iteration": int, "rng_state": dict, "population": [gene, ...], "cache":
[(gene, score), ...], "history": [...], "evaluated": int, "best": gene |
None, "best_score": float, "estimator_caches": {"bound": [...],
"parametric": {...}} | None}``.  Writes are atomic (temp file +
``os.replace`` in the target directory), so a crash mid-write leaves the
previous checkpoint intact; unknown versions raise instead of resuming
wrong, while a truncated/corrupt file (one written without the atomic
rename, or rotted on disk) degrades to resume-from-scratch with a
``RuntimeWarning`` rather than crashing the run.
"""

from __future__ import annotations

import os
import pickle
import warnings
from typing import Optional

__all__ = ["SearchCheckpointer"]


class SearchCheckpointer:
    """Atomic pickle persistence for one search's generation-level state.

    ``estimator`` is optional: when given, every save also exports the
    estimator's merged transpile/parametric cache entries and every load
    adopts them back, so resumed searches skip recompilation.  The
    checkpointer never interprets the search state beyond the version field
    — the :class:`~repro.core.evolution.EvolutionEngine` owns the schema of
    what it stores.
    """

    VERSION = 1

    def __init__(self, path: str, estimator=None) -> None:
        self.path = str(path)
        self.estimator = estimator

    # -- persistence ---------------------------------------------------------

    def load(self) -> Optional[dict]:
        """The last checkpoint's state, or ``None`` when none exists yet.

        Adopts the checkpoint's estimator cache entries (if both were
        saved and an estimator is attached) before returning.
        """
        if not os.path.exists(self.path):
            return None
        try:
            with open(self.path, "rb") as handle:
                state = pickle.load(handle)
        except (EOFError, pickle.UnpicklingError, AttributeError, IndexError,
                ValueError, OSError) as exc:
            # a truncated or corrupt file (disk-full crash mid-write before
            # the atomic rename existed, bit rot, ...) must degrade to a
            # fresh search, not kill the resumed run
            warnings.warn(
                f"checkpoint {self.path!r} is unreadable ({exc!r}); "
                "resuming from scratch",
                RuntimeWarning,
                stacklevel=2,
            )
            return None
        if not isinstance(state, dict):
            warnings.warn(
                f"checkpoint {self.path!r} does not hold a search state "
                f"payload (got {type(state).__name__}); resuming from scratch",
                RuntimeWarning,
                stacklevel=2,
            )
            return None
        version = state.get("version")
        if version != self.VERSION:
            raise ValueError(
                f"checkpoint {self.path!r} has version {version!r}; "
                f"this build reads version {self.VERSION}"
            )
        caches = state.get("estimator_caches")
        if caches is not None and self.estimator is not None:
            self.estimator.transpile_cache.adopt_entries(caches["bound"])
            self.estimator.parametric_transpile_cache.adopt_entries(
                caches["parametric"]
            )
        return state

    def save(self, state: dict) -> None:
        """Atomically persist ``state`` (plus the estimator's caches)."""
        payload = dict(state)
        payload["version"] = self.VERSION
        payload["estimator_caches"] = self._export_caches()
        directory = os.path.dirname(os.path.abspath(self.path))
        os.makedirs(directory, exist_ok=True)
        # temp file in the same directory so os.replace stays atomic (no
        # cross-filesystem rename), named uniquely per process
        tmp_path = os.path.join(
            directory, f".{os.path.basename(self.path)}.{os.getpid()}.tmp"
        )
        try:
            with open(tmp_path, "wb") as handle:
                pickle.dump(payload, handle, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp_path, self.path)
        finally:
            if os.path.exists(tmp_path):
                os.remove(tmp_path)

    def _export_caches(self) -> Optional[dict]:
        if self.estimator is None:
            return None
        return {
            "bound": self.estimator.transpile_cache.export_entries(),
            "parametric": self.estimator.parametric_transpile_cache.export_entries(),
        }
