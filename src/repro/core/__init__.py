"""QuantumNAS core: design spaces, SuperCircuit, co-search, pruning, pipeline."""

from .design_space import (
    DESIGN_SPACES,
    DesignSpace,
    LayerSpec,
    available_design_spaces,
    get_design_space,
)
from .checkpoint import SearchCheckpointer
from .estimator import EstimatorConfig, PerformanceEstimator
from .evolution import (
    Candidate,
    EvolutionConfig,
    EvolutionEngine,
    EvolutionResult,
    PopulationScoreFn,
    random_search,
)
from .pipeline import (
    QMLPipelineConfig,
    QMLPipelineResult,
    QuantumNASQMLPipeline,
    QuantumNASVQEPipeline,
    VQEPipelineConfig,
    VQEPipelineResult,
)
from .pruning import (
    PruningResult,
    iterative_prune_qnn,
    iterative_prune_vqe,
    normalized_angles,
    polynomial_ratio,
    prune_mask,
)
from .sampler import ConfigSampler, SamplerConfig
from .subcircuit import SubCircuitConfig
from .supercircuit import GateSlot, SuperCircuit
from .trainer import (
    SuperTrainConfig,
    SuperTrainResult,
    train_subcircuit_qml,
    train_subcircuit_vqe,
    train_supercircuit_qml,
    train_supercircuit_vqe,
)

__all__ = [
    "DESIGN_SPACES",
    "DesignSpace",
    "LayerSpec",
    "available_design_spaces",
    "get_design_space",
    "EstimatorConfig",
    "PerformanceEstimator",
    "SearchCheckpointer",
    "Candidate",
    "EvolutionConfig",
    "EvolutionEngine",
    "EvolutionResult",
    "PopulationScoreFn",
    "random_search",
    "QMLPipelineConfig",
    "QMLPipelineResult",
    "QuantumNASQMLPipeline",
    "QuantumNASVQEPipeline",
    "VQEPipelineConfig",
    "VQEPipelineResult",
    "PruningResult",
    "iterative_prune_qnn",
    "iterative_prune_vqe",
    "normalized_angles",
    "polynomial_ratio",
    "prune_mask",
    "ConfigSampler",
    "SamplerConfig",
    "SubCircuitConfig",
    "GateSlot",
    "SuperCircuit",
    "SuperTrainConfig",
    "SuperTrainResult",
    "train_subcircuit_qml",
    "train_subcircuit_vqe",
    "train_supercircuit_qml",
    "train_supercircuit_vqe",
]
