"""SubCircuit samplers for SuperCircuit training.

Two techniques from the paper stabilize sampling-based SuperCircuit training:

* **Front sampling** — only prefixes of blocks and of gates inside a layer are
  sampled, so all SubCircuits share the front parameters.
* **Restricted sampling** — consecutive samples may differ in at most
  ``max_layer_changes`` (block, layer) positions (the paper uses 7), which
  bounds the sampling variance between steps.

``progressive_min_blocks`` additionally shrinks the lower bound of sampled
block counts over training, the "progressively shrink the lower bound of
possible sampled SubCircuit #blocks" trick from Section IV.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from ..utils.rng import ensure_rng
from .design_space import DesignSpace
from .subcircuit import SubCircuitConfig

__all__ = ["SamplerConfig", "ConfigSampler"]


@dataclass
class SamplerConfig:
    """Knobs of the SubCircuit sampler."""

    front_sampling: bool = True
    restricted_sampling: bool = True
    max_layer_changes: int = 7
    progressive_shrink: bool = True
    total_steps: int = 1000


class ConfigSampler:
    """Samples SubCircuit configurations during SuperCircuit training."""

    def __init__(
        self,
        space: DesignSpace,
        n_qubits: int,
        config: Optional[SamplerConfig] = None,
        rng=None,
    ) -> None:
        self.space = space
        self.n_qubits = int(n_qubits)
        self.config = config or SamplerConfig(front_sampling=space.front_sampling)
        self.rng = ensure_rng(rng)
        self.max_widths = space.max_widths(self.n_qubits)
        self._previous: Optional[SubCircuitConfig] = None
        self._step = 0

    # -- block-count schedule ----------------------------------------------------

    def min_blocks_at(self, step: int) -> int:
        """Lower bound of sampled #blocks at a given training step."""
        if not self.config.progressive_shrink:
            return 1
        total = max(self.config.total_steps, 1)
        progress = min(step / total, 1.0)
        # Start sampling only deep SubCircuits, progressively allow shallow ones.
        upper = self.space.max_blocks
        lower = max(1, int(round(upper - progress * (upper - 1))))
        return lower

    # -- sampling -----------------------------------------------------------------

    def _random_config(self, min_blocks: int) -> SubCircuitConfig:
        n_blocks = int(self.rng.integers(min_blocks, self.space.max_blocks + 1))
        widths = tuple(
            tuple(
                int(self.rng.integers(self.space.min_width, max_width + 1))
                for max_width in self.max_widths
            )
            for _ in range(self.space.max_blocks)
        )
        return SubCircuitConfig(n_blocks, widths)

    def _restricted_step(
        self, previous: SubCircuitConfig, min_blocks: int
    ) -> SubCircuitConfig:
        """Alter at most ``max_layer_changes`` positions of the previous config."""
        n_positions = self.space.max_blocks * self.space.n_layers
        n_changes = int(
            self.rng.integers(1, max(self.config.max_layer_changes, 1) + 1)
        )
        change_positions = self.rng.choice(
            n_positions, size=min(n_changes, n_positions), replace=False
        )
        widths = [list(block) for block in previous.widths]
        for flat in change_positions:
            block, layer = divmod(int(flat), self.space.n_layers)
            widths[block][layer] = int(
                self.rng.integers(self.space.min_width, self.max_widths[layer] + 1)
            )
        n_blocks = previous.n_blocks
        if self.rng.random() < 0.5:
            n_blocks = int(self.rng.integers(min_blocks, self.space.max_blocks + 1))
        n_blocks = max(n_blocks, min_blocks)
        return SubCircuitConfig(n_blocks, tuple(tuple(b) for b in widths))

    def sample(self) -> SubCircuitConfig:
        """Sample the next SubCircuit configuration."""
        min_blocks = self.min_blocks_at(self._step)
        if (
            self.config.restricted_sampling
            and self._previous is not None
        ):
            config = self._restricted_step(self._previous, min_blocks)
        else:
            config = self._random_config(min_blocks)
        self._previous = config
        self._step += 1
        return config

    def sample_many(self, count: int) -> List[SubCircuitConfig]:
        return [self.sample() for _ in range(count)]

    def reset(self) -> None:
        self._previous = None
        self._step = 0
