"""Iterative quantum pruning with finetuning.

After the searched SubCircuit is trained from scratch, rotation angles whose
normalized magnitude is close to zero are removed (set to zero and frozen) in
stages, following a polynomial pruning-ratio schedule, with finetuning after
each stage to recover performance.  Because a U3 gate with one or two zero
angles compiles to far fewer basis gates (5 -> 4 -> 1), pruning directly
reduces the number of noise sources in the deployed circuit.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..qml.datasets import Dataset
from ..qml.qnn import QNNModel
from ..qml.training import TrainConfig, train_qnn
from ..vqe.vqe import VQEConfig, VQEModel

__all__ = [
    "normalized_angles",
    "polynomial_ratio",
    "prune_mask",
    "PruningResult",
    "iterative_prune_qnn",
    "iterative_prune_vqe",
]


def normalized_angles(weights: np.ndarray) -> np.ndarray:
    """Wrap rotation angles into ``[-pi, pi)`` (the paper's normalization)."""
    weights = np.asarray(weights, dtype=float)
    return np.mod(weights + np.pi, 2.0 * np.pi) - np.pi


def polynomial_ratio(
    step: int, begin: int, end: int, initial_ratio: float, final_ratio: float
) -> float:
    """Polynomial pruning-ratio decay schedule (Zhu & Gupta)."""
    if end <= begin:
        return final_ratio
    progress = np.clip((step - begin) / (end - begin), 0.0, 1.0)
    return final_ratio + (initial_ratio - final_ratio) * (1.0 - progress) ** 3


def prune_mask(
    weights: np.ndarray, keep_mask: np.ndarray, target_ratio: float
) -> np.ndarray:
    """Keep-mask after pruning to ``target_ratio`` of all weights.

    Weights already pruned stay pruned; among the survivors, the angles closest
    to zero (after normalization) are removed until the global pruned fraction
    reaches ``target_ratio``.
    """
    weights = np.asarray(weights, dtype=float)
    keep_mask = np.asarray(keep_mask, dtype=bool).copy()
    total = weights.size
    target_pruned = int(round(np.clip(target_ratio, 0.0, 1.0) * total))
    already_pruned = int((~keep_mask).sum())
    to_prune = max(target_pruned - already_pruned, 0)
    if to_prune == 0:
        return keep_mask
    magnitudes = np.abs(normalized_angles(weights))
    magnitudes[~keep_mask] = np.inf  # never re-rank already pruned weights
    order = np.argsort(magnitudes)
    keep_mask[order[:to_prune]] = False
    return keep_mask


@dataclass
class PruningResult:
    """Final pruned weights, keep mask and per-stage history."""

    weights: np.ndarray
    keep_mask: np.ndarray
    history: List[Dict[str, float]] = field(default_factory=list)

    @property
    def pruning_ratio(self) -> float:
        return float((~self.keep_mask).sum() / self.keep_mask.size)

    @property
    def num_remaining(self) -> int:
        return int(self.keep_mask.sum())


def iterative_prune_qnn(
    model: QNNModel,
    weights: np.ndarray,
    dataset: Dataset,
    final_ratio: float,
    initial_ratio: float = 0.05,
    n_stages: int = 4,
    finetune_epochs: int = 5,
    train_config: Optional[TrainConfig] = None,
) -> PruningResult:
    """Iteratively prune and finetune a trained QNN."""
    weights = np.array(weights, dtype=float)
    keep_mask = np.ones_like(weights, dtype=bool)
    base_config = train_config or TrainConfig()
    history: List[Dict[str, float]] = []

    for stage in range(1, n_stages + 1):
        ratio = polynomial_ratio(stage, 0, n_stages, initial_ratio, final_ratio)
        keep_mask = prune_mask(weights, keep_mask, ratio)
        weights = np.where(keep_mask, weights, 0.0)
        finetune = TrainConfig(
            epochs=finetune_epochs,
            batch_size=base_config.batch_size,
            learning_rate=base_config.learning_rate,
            weight_decay=base_config.weight_decay,
            seed=base_config.seed + stage,
        )
        result = train_qnn(
            model,
            dataset,
            finetune,
            initial_weights=weights,
            weight_mask=keep_mask,
        )
        weights = np.where(keep_mask, result.weights, 0.0)
        loss, acc = model.loss(weights, dataset.x_valid, dataset.y_valid)
        history.append(
            {
                "stage": stage,
                "ratio": float((~keep_mask).sum() / keep_mask.size),
                "valid_loss": loss,
                "valid_accuracy": acc,
            }
        )
    return PruningResult(weights=weights, keep_mask=keep_mask, history=history)


def iterative_prune_vqe(
    model: VQEModel,
    weights: np.ndarray,
    final_ratio: float,
    initial_ratio: float = 0.05,
    n_stages: int = 4,
    finetune_steps: int = 40,
    vqe_config: Optional[VQEConfig] = None,
) -> PruningResult:
    """Iteratively prune and finetune a trained VQE ansatz."""
    weights = np.array(weights, dtype=float)
    keep_mask = np.ones_like(weights, dtype=bool)
    base_config = vqe_config or VQEConfig()
    history: List[Dict[str, float]] = []

    for stage in range(1, n_stages + 1):
        ratio = polynomial_ratio(stage, 0, n_stages, initial_ratio, final_ratio)
        keep_mask = prune_mask(weights, keep_mask, ratio)
        weights = np.where(keep_mask, weights, 0.0)
        finetune = VQEConfig(
            steps=finetune_steps,
            learning_rate=base_config.learning_rate,
            weight_decay=base_config.weight_decay,
            seed=base_config.seed + stage,
        )
        result = model.train(
            finetune, initial_weights=weights, weight_mask=keep_mask
        )
        weights = np.where(keep_mask, result.weights, 0.0)
        history.append(
            {
                "stage": stage,
                "ratio": float((~keep_mask).sum() / keep_mask.size),
                "energy": model.energy(weights),
            }
        )
    return PruningResult(weights=weights, keep_mask=keep_mask, history=history)
