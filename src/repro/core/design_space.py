"""Circuit design spaces.

A design space defines the *largest* circuit QuantumNAS may search over: a
repeated block of gate layers (Section IV "Circuit Design Spaces").  The
SuperCircuit is the circuit with every block and every gate present; a
SubCircuit keeps only a prefix (front sampling) of blocks and of gates inside
each layer.

The six spaces from the paper are registered here:

1. ``u3cu3``          — U3 layer + CU3 ring layer (8 blocks)
2. ``zzry``           — ZZ ring layer + RY layer (8 blocks)
3. ``rxyz``           — RX, RY, RZ, CZ layers with a sqrt(H) prefix (8 blocks)
4. ``zxxx``           — ZX ring + XX ring layers (8 blocks)
5. ``rxyz_u1_cu3``    — the 11-layer random-basis space (4 blocks)
6. ``ibmq_basis``     — RZ, X, RZ, SX, RZ, CNOT layers (20 blocks, no front sampling)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from ..quantum.gates import gate_num_params, gate_num_qubits

__all__ = ["LayerSpec", "DesignSpace", "DESIGN_SPACES", "get_design_space",
           "available_design_spaces"]


@dataclass(frozen=True)
class LayerSpec:
    """One layer of a block: a gate type applied across the register.

    ``arrangement`` is ``"single"`` (one gate per qubit) or ``"ring"`` (gates
    on the ring pairs ``(0,1), (1,2), ..., (n-1,0)``).
    """

    gate: str
    arrangement: str = "single"

    def __post_init__(self) -> None:
        if self.arrangement not in ("single", "ring"):
            raise ValueError(f"invalid arrangement '{self.arrangement}'")
        expected = 1 if self.arrangement == "single" else 2
        if gate_num_qubits(self.gate) != expected:
            raise ValueError(
                f"gate '{self.gate}' has {gate_num_qubits(self.gate)} qubits but "
                f"arrangement '{self.arrangement}' requires {expected}"
            )

    @property
    def params_per_gate(self) -> int:
        return gate_num_params(self.gate)

    def positions(self, n_qubits: int) -> List[Tuple[int, ...]]:
        """All gate positions of this layer at full width."""
        if self.arrangement == "single":
            return [(q,) for q in range(n_qubits)]
        if n_qubits == 2:
            return [(0, 1)]
        return [(q, (q + 1) % n_qubits) for q in range(n_qubits)]

    def max_width(self, n_qubits: int) -> int:
        return len(self.positions(n_qubits))


@dataclass(frozen=True)
class DesignSpace:
    """A named design space: a block of layers repeated up to ``max_blocks``."""

    name: str
    layers: Tuple[LayerSpec, ...]
    max_blocks: int
    front_sampling: bool = True
    prefix_layers: Tuple[LayerSpec, ...] = ()
    min_width: int = 1

    @property
    def n_layers(self) -> int:
        return len(self.layers)

    def max_widths(self, n_qubits: int) -> List[int]:
        return [layer.max_width(n_qubits) for layer in self.layers]

    def params_per_block(self, n_qubits: int) -> int:
        return sum(
            layer.params_per_gate * layer.max_width(n_qubits) for layer in self.layers
        )

    def total_parameters(self, n_qubits: int) -> int:
        """Parameter count of the full SuperCircuit."""
        return self.max_blocks * self.params_per_block(n_qubits)

    def num_subcircuits(self, n_qubits: int) -> float:
        """Size of the design space (number of distinct SubCircuit configs)."""
        per_block = 1.0
        for width in self.max_widths(n_qubits):
            per_block *= width - self.min_width + 1
        total = 0.0
        for blocks in range(1, self.max_blocks + 1):
            total += per_block**blocks
        return total


def _space(name, layers, max_blocks, front_sampling=True, prefix=()):
    return DesignSpace(
        name=name,
        layers=tuple(layers),
        max_blocks=max_blocks,
        front_sampling=front_sampling,
        prefix_layers=tuple(prefix),
    )


DESIGN_SPACES: Dict[str, DesignSpace] = {
    "u3cu3": _space(
        "u3cu3",
        [LayerSpec("u3", "single"), LayerSpec("cu3", "ring")],
        max_blocks=8,
    ),
    "zzry": _space(
        "zzry",
        [LayerSpec("rzz", "ring"), LayerSpec("ry", "single")],
        max_blocks=8,
    ),
    "rxyz": _space(
        "rxyz",
        [
            LayerSpec("rx", "single"),
            LayerSpec("ry", "single"),
            LayerSpec("rz", "single"),
            LayerSpec("cz", "ring"),
        ],
        max_blocks=8,
        prefix=[LayerSpec("sh", "single")],
    ),
    "zxxx": _space(
        "zxxx",
        [LayerSpec("rzx", "ring"), LayerSpec("rxx", "ring")],
        max_blocks=8,
    ),
    "rxyz_u1_cu3": _space(
        "rxyz_u1_cu3",
        [
            LayerSpec("rx", "single"),
            LayerSpec("s", "single"),
            LayerSpec("cx", "ring"),
            LayerSpec("ry", "single"),
            LayerSpec("t", "single"),
            LayerSpec("swap", "ring"),
            LayerSpec("rz", "single"),
            LayerSpec("h", "single"),
            LayerSpec("sqswap", "ring"),
            LayerSpec("u1", "single"),
            LayerSpec("cu3", "ring"),
        ],
        max_blocks=4,
    ),
    "ibmq_basis": _space(
        "ibmq_basis",
        [
            LayerSpec("rz", "single"),
            LayerSpec("x", "single"),
            LayerSpec("rz", "single"),
            LayerSpec("sx", "single"),
            LayerSpec("rz", "single"),
            LayerSpec("cx", "ring"),
        ],
        max_blocks=20,
        front_sampling=False,
    ),
}


def available_design_spaces() -> List[str]:
    return sorted(DESIGN_SPACES)


def get_design_space(name: str) -> DesignSpace:
    key = name.lower().replace("+", "").replace("-", "_").replace(" ", "")
    aliases = {
        "u3cu3": "u3cu3",
        "zzry": "zzry",
        "rxyz": "rxyz",
        "zxxx": "zxxx",
        "rxyzu1cu3": "rxyz_u1_cu3",
        "rxyz_u1_cu3": "rxyz_u1_cu3",
        "ibmqbasis": "ibmq_basis",
        "ibmq_basis": "ibmq_basis",
    }
    key = aliases.get(key, key)
    if key not in DESIGN_SPACES:
        raise KeyError(
            f"unknown design space '{name}'; available: "
            f"{', '.join(available_design_spaces())}"
        )
    return DESIGN_SPACES[key]
