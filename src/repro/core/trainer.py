"""SuperCircuit and SubCircuit training.

SuperCircuit training iteratively samples a SubCircuit, computes gradients only
through its gates and updates only that subset of the shared parameters
(masked Adam), which is "simultaneously training all SubCircuits in the design
space".  SubCircuit training-from-scratch (stage 3 of the pipeline) reuses the
standard QML / VQE training loops.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from ..qml.datasets import Dataset
from ..qml.qnn import QNNModel
from ..qml.training import TrainConfig, TrainResult, train_qnn
from ..quantum.operators import PauliSum
from ..utils.optimizers import Adam, CosineWarmupSchedule
from ..utils.rng import ensure_rng
from ..vqe.molecules import Molecule
from ..vqe.vqe import VQEConfig, VQEModel, VQEResult
from .sampler import ConfigSampler, SamplerConfig
from .subcircuit import SubCircuitConfig
from .supercircuit import SuperCircuit

__all__ = [
    "SuperTrainConfig",
    "SuperTrainResult",
    "train_supercircuit_qml",
    "train_supercircuit_vqe",
    "train_subcircuit_qml",
    "train_subcircuit_vqe",
]


@dataclass
class SuperTrainConfig:
    """Hyper-parameters of SuperCircuit training."""

    steps: int = 200
    batch_size: int = 64
    learning_rate: float = 5e-3
    weight_decay: float = 1e-4
    warmup_steps: int = 30
    seed: int = 0
    restricted_sampling: bool = True
    max_layer_changes: int = 7
    progressive_shrink: bool = True


@dataclass
class SuperTrainResult:
    """Training history of a SuperCircuit."""

    history: List[Dict[str, float]] = field(default_factory=list)

    @property
    def final_loss(self) -> float:
        return self.history[-1]["loss"] if self.history else float("nan")


def _make_sampler(
    supercircuit: SuperCircuit, config: SuperTrainConfig, rng
) -> ConfigSampler:
    sampler_config = SamplerConfig(
        front_sampling=supercircuit.space.front_sampling,
        restricted_sampling=config.restricted_sampling,
        max_layer_changes=config.max_layer_changes,
        progressive_shrink=config.progressive_shrink,
        total_steps=config.steps,
    )
    return ConfigSampler(
        supercircuit.space, supercircuit.n_qubits, sampler_config, rng=rng
    )


def train_supercircuit_qml(
    supercircuit: SuperCircuit,
    dataset: Dataset,
    n_classes: int,
    config: Optional[SuperTrainConfig] = None,
    sampler: Optional[ConfigSampler] = None,
) -> SuperTrainResult:
    """Train the SuperCircuit's shared parameters on a QML task."""
    config = config or SuperTrainConfig()
    rng = ensure_rng(config.seed)
    sampler = sampler or _make_sampler(supercircuit, config, rng)
    schedule = CosineWarmupSchedule(
        base_lr=config.learning_rate,
        total_steps=config.steps,
        warmup_steps=config.warmup_steps,
    )
    optimizer = Adam(
        lr=config.learning_rate, weight_decay=config.weight_decay, schedule=schedule
    )
    parameters = supercircuit.parameters.copy()
    n_train = len(dataset.y_train)
    result = SuperTrainResult()

    for step in range(config.steps):
        sub_config = sampler.sample()
        circuit = supercircuit.build_shared_circuit(sub_config)
        model = QNNModel.from_circuit(circuit, n_classes)
        index = rng.choice(n_train, size=min(config.batch_size, n_train), replace=False)
        loss, grads, _logits = model.loss_and_gradient(
            parameters, dataset.x_train[index], dataset.y_train[index]
        )
        mask = supercircuit.active_weight_mask(sub_config)
        grads = np.where(mask, grads, 0.0)
        parameters = optimizer.step(parameters, grads, mask=mask)
        result.history.append(
            {
                "step": step,
                "loss": float(loss),
                "n_blocks": sub_config.n_blocks,
                "n_active_params": int(mask.sum()),
            }
        )
    supercircuit.update_parameters(parameters)
    return result


def train_supercircuit_vqe(
    supercircuit: SuperCircuit,
    molecule: Molecule,
    config: Optional[SuperTrainConfig] = None,
    sampler: Optional[ConfigSampler] = None,
) -> SuperTrainResult:
    """Train the SuperCircuit's shared parameters to minimize a molecular energy."""
    config = config or SuperTrainConfig(batch_size=1)
    rng = ensure_rng(config.seed)
    sampler = sampler or _make_sampler(supercircuit, config, rng)
    schedule = CosineWarmupSchedule(
        base_lr=config.learning_rate,
        total_steps=config.steps,
        warmup_steps=config.warmup_steps,
    )
    optimizer = Adam(
        lr=config.learning_rate, weight_decay=config.weight_decay, schedule=schedule
    )
    parameters = supercircuit.parameters.copy()
    result = SuperTrainResult()

    for step in range(config.steps):
        sub_config = sampler.sample()
        circuit = supercircuit.build_shared_circuit(sub_config, include_encoder=False)
        model = VQEModel(circuit, molecule)
        energy, grads = model.energy_and_gradient(parameters)
        mask = supercircuit.active_weight_mask(sub_config)
        grads = np.where(mask, grads, 0.0)
        parameters = optimizer.step(parameters, grads, mask=mask)
        result.history.append(
            {
                "step": step,
                "loss": float(energy),
                "n_blocks": sub_config.n_blocks,
                "n_active_params": int(mask.sum()),
            }
        )
    supercircuit.update_parameters(parameters)
    return result


def train_subcircuit_qml(
    supercircuit: SuperCircuit,
    sub_config: SubCircuitConfig,
    dataset: Dataset,
    n_classes: int,
    train_config: Optional[TrainConfig] = None,
    from_inherited: bool = False,
    gradient_fn=None,
) -> tuple[QNNModel, TrainResult]:
    """Train a searched SubCircuit from scratch (or finetune inherited weights).

    ``gradient_fn`` (e.g. a :class:`~repro.qml.evaluation.
    ParameterShiftGradient`) switches training from adjoint gradients to the
    hardware-compatible parameter-shift rule.
    """
    circuit, _mapping = supercircuit.build_standalone_circuit(sub_config)
    model = QNNModel.from_circuit(circuit, n_classes)
    initial = supercircuit.inherited_weights(sub_config) if from_inherited else None
    result = train_qnn(
        model, dataset, train_config,
        initial_weights=initial, gradient_fn=gradient_fn,
    )
    return model, result


def train_subcircuit_vqe(
    supercircuit: SuperCircuit,
    sub_config: SubCircuitConfig,
    molecule: Molecule,
    vqe_config: Optional[VQEConfig] = None,
    from_inherited: bool = False,
    backend=None,
    initial_layout=None,
) -> tuple[VQEModel, VQEResult]:
    """Train a searched VQE SubCircuit from scratch (or from inherited weights).

    ``backend``/``initial_layout`` are forwarded to :meth:`VQEModel.train`
    for ``vqe_config.gradient == "parameter_shift"`` runs under a device
    noise model.
    """
    circuit, _mapping = supercircuit.build_standalone_circuit(
        sub_config, include_encoder=False
    )
    model = VQEModel(circuit, molecule)
    initial = (
        supercircuit.inherited_weights(sub_config) if from_inherited else None
    )
    result = model.train(
        vqe_config, initial_weights=initial,
        backend=backend, initial_layout=initial_layout,
    )
    return model, result
