"""Qubit-connectivity topologies.

The paper groups its 5-qubit devices by coupling-map shape ('–' line, 'T', '+')
and evaluates larger machines (15–65 qubits) with ladder / heavy-hex style
lattices.  This module provides those shapes as undirected coupling graphs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence, Tuple

import networkx as nx

__all__ = ["Topology", "line_topology", "t_topology", "plus_topology",
           "bowtie_topology", "h_topology", "ladder_topology",
           "heavy_hex_like_topology", "grid_topology"]


@dataclass(frozen=True)
class Topology:
    """An undirected coupling map over ``n_qubits`` physical qubits."""

    name: str
    n_qubits: int
    edges: Tuple[Tuple[int, int], ...]

    def __post_init__(self) -> None:
        normalized = tuple(
            sorted({(min(a, b), max(a, b)) for a, b in self.edges})
        )
        object.__setattr__(self, "edges", normalized)
        for a, b in normalized:
            if a == b:
                raise ValueError("self-loop in coupling map")
            if not (0 <= a < self.n_qubits and 0 <= b < self.n_qubits):
                raise ValueError("edge references a qubit outside the register")

    def graph(self) -> nx.Graph:
        graph = nx.Graph()
        graph.add_nodes_from(range(self.n_qubits))
        graph.add_edges_from(self.edges)
        return graph

    def are_adjacent(self, a: int, b: int) -> bool:
        key = (min(a, b), max(a, b))
        return key in set(self.edges)

    def neighbors(self, qubit: int) -> List[int]:
        out = []
        for a, b in self.edges:
            if a == qubit:
                out.append(b)
            elif b == qubit:
                out.append(a)
        return sorted(out)

    def degree(self, qubit: int) -> int:
        return len(self.neighbors(qubit))

    def shortest_path(self, a: int, b: int) -> List[int]:
        return nx.shortest_path(self.graph(), a, b)

    def distance(self, a: int, b: int) -> int:
        return nx.shortest_path_length(self.graph(), a, b)

    def is_connected(self) -> bool:
        return nx.is_connected(self.graph())

    def connected_subsets(self, size: int) -> Iterable[Tuple[int, ...]]:
        """Yield connected subsets of ``size`` qubits (used by layout search).

        Enumeration is pruned by growing subsets from each seed node; for large
        devices callers should cap the number of candidates they consume.
        """
        graph = self.graph()
        seen: set[Tuple[int, ...]] = set()
        for seed in range(self.n_qubits):
            frontier = [(seed,)]
            while frontier:
                subset = frontier.pop()
                if len(subset) == size:
                    key = tuple(sorted(subset))
                    if key not in seen:
                        seen.add(key)
                        yield key
                    continue
                candidates = set()
                for node in subset:
                    candidates.update(graph.neighbors(node))
                for candidate in sorted(candidates - set(subset)):
                    if candidate > seed or candidate in subset:
                        frontier.append(subset + (candidate,))


def line_topology(n_qubits: int, name: str = "line") -> Topology:
    """Linear chain 0-1-2-...-(n-1) — the '–' shape (Santiago, Athens, Rome)."""
    edges = tuple((i, i + 1) for i in range(n_qubits - 1))
    return Topology(name, n_qubits, edges)


def t_topology(name: str = "t") -> Topology:
    """5-qubit 'T' shape (Belem, Quito, Lima): 0-1-2, 1-3-4."""
    return Topology(name, 5, ((0, 1), (1, 2), (1, 3), (3, 4)))


def plus_topology(name: str = "plus") -> Topology:
    """5-qubit '+' shape: a centre qubit connected to four arms."""
    return Topology(name, 5, ((0, 2), (1, 2), (2, 3), (2, 4)))


def bowtie_topology(name: str = "bowtie") -> Topology:
    """IBMQ-Yorktown's bowtie: two triangles sharing the centre qubit."""
    return Topology(name, 5, ((0, 1), (0, 2), (1, 2), (2, 3), (2, 4), (3, 4)))


def h_topology(name: str = "h") -> Topology:
    """7-qubit 'H' shape (Jakarta, Casablanca): 0-1-2 and 4-5-6 bridged by 3."""
    return Topology(name, 7, ((0, 1), (1, 2), (1, 3), (3, 5), (4, 5), (5, 6)))


def ladder_topology(n_qubits: int, name: str = "ladder") -> Topology:
    """Two parallel rows with rungs — the IBMQ-Melbourne style layout.

    Odd register sizes put the extra qubit on the top row (as on the 15-qubit
    Melbourne device).
    """
    if n_qubits < 2:
        raise ValueError("ladder topology needs at least two qubits")
    top = (n_qubits + 1) // 2
    bottom = n_qubits - top
    edges: List[Tuple[int, int]] = []
    for i in range(top - 1):
        edges.append((i, i + 1))
    for i in range(bottom - 1):
        edges.append((top + i, top + i + 1))
    for i in range(bottom):
        edges.append((i, top + i))
    return Topology(name, n_qubits, tuple(edges))


def grid_topology(rows: int, cols: int, name: str = "grid") -> Topology:
    """Rectangular grid topology."""
    edges: List[Tuple[int, int]] = []
    for r in range(rows):
        for c in range(cols):
            node = r * cols + c
            if c + 1 < cols:
                edges.append((node, node + 1))
            if r + 1 < rows:
                edges.append((node, node + cols))
    return Topology(name, rows * cols, tuple(edges))


def heavy_hex_like_topology(n_qubits: int, name: str = "heavy_hex") -> Topology:
    """A heavy-hex-like sparse lattice for the 16/27/65-qubit devices.

    Constructed as a degree-limited grid: rows of qubits connected in a line,
    with every third qubit bridged to the next row.  This matches the sparse,
    low-degree character of IBM's heavy-hex devices (Guadalupe, Montreal,
    Manhattan) without reproducing their exact lattices.
    """
    cols = max(4, int(round(n_qubits**0.5)) + 1)
    rows = (n_qubits + cols - 1) // cols
    edges: List[Tuple[int, int]] = []
    for r in range(rows):
        for c in range(cols):
            node = r * cols + c
            if node >= n_qubits:
                continue
            right = node + 1
            if c + 1 < cols and right < n_qubits:
                edges.append((node, right))
            below = node + cols
            if r + 1 < rows and below < n_qubits and c % 3 == (r % 2) * 2 % 3:
                edges.append((node, below))
    topology = Topology(name, n_qubits, tuple(edges))
    if not topology.is_connected():
        # Stitch any disconnected components with extra vertical links.
        graph = topology.graph()
        components = list(nx.connected_components(graph))
        extra = list(topology.edges)
        for first, second in zip(components, components[1:]):
            extra.append((min(first), min(second)))
        topology = Topology(name, n_qubits, tuple(extra))
    return topology
