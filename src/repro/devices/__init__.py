"""Synthetic quantum devices: topologies, calibrations, backends."""

from .backend import BackendResult, QuantumBackend
from .calibration import Calibration, CalibrationTargets, generate_calibration
from .library import DEVICE_SPECS, Device, available_devices, get_device
from .topology import (
    Topology,
    bowtie_topology,
    grid_topology,
    h_topology,
    heavy_hex_like_topology,
    ladder_topology,
    line_topology,
    plus_topology,
    t_topology,
)

__all__ = [
    "BackendResult",
    "QuantumBackend",
    "Calibration",
    "CalibrationTargets",
    "generate_calibration",
    "DEVICE_SPECS",
    "Device",
    "available_devices",
    "get_device",
    "Topology",
    "bowtie_topology",
    "grid_topology",
    "h_topology",
    "heavy_hex_like_topology",
    "ladder_topology",
    "line_topology",
    "plus_topology",
    "t_topology",
]
