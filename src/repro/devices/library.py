"""The device library: 14 synthetic IBMQ-like quantum computers.

Names, sizes, topologies, quantum volumes and average error-rate targets follow
the devices the paper evaluates on (Fig. 14, Fig. 15, Fig. 18 and the Fig. 21
error-rate table).  Calibration snapshots are deterministic per device so
experiments are reproducible, and :meth:`Device.recalibrated` models the drift
between search time and deployment time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..noise.models import NoiseModel
from .calibration import Calibration, CalibrationTargets, generate_calibration
from .topology import (
    Topology,
    bowtie_topology,
    h_topology,
    heavy_hex_like_topology,
    ladder_topology,
    line_topology,
    t_topology,
)

__all__ = ["Device", "DEVICE_SPECS", "available_devices", "get_device"]


@dataclass
class Device:
    """A quantum computer: topology + calibration + metadata."""

    name: str
    topology: Topology
    calibration: Calibration
    quantum_volume: int
    basis_gates: Tuple[str, ...] = ("cx", "sx", "rz", "x")
    #: memoized noise model — the calibration snapshot is immutable for the
    #: lifetime of a Device (drift produces a *new* Device), and every caller
    #: treats the returned model as read-only (``reduced`` copies), so the
    #: success-rate / layout-scoring hot paths share one instance.
    _noise_model: Optional[NoiseModel] = field(
        default=None, init=False, repr=False, compare=False
    )

    @property
    def n_qubits(self) -> int:
        return self.topology.n_qubits

    def noise_model(self) -> NoiseModel:
        if self._noise_model is None:
            self._noise_model = self.calibration.noise_model()
        return self._noise_model

    def __getstate__(self) -> dict:
        # The memoized noise model is derived state: dropping it keeps device
        # pickles lean (sharded-scheduler tasks and compiled-circuit cache
        # entries carry a Device each) and lets every worker process rebuild
        # it deterministically from the calibration snapshot.
        state = self.__dict__.copy()
        state["_noise_model"] = None
        return state

    def error_summary(self) -> Dict[str, float]:
        return {
            "single_qubit_error": self.calibration.average_single_qubit_error(),
            "two_qubit_error": self.calibration.average_two_qubit_error(),
            "readout_error": self.calibration.average_readout_error(),
        }

    def recalibrated(self, weeks_later: int = 3) -> "Device":
        """The same device after calibration drift (e.g. 3 weeks later)."""
        drifted = self.calibration.drift(
            drift_scale=0.05 * max(weeks_later, 1), seed_offset=weeks_later
        )
        return Device(
            name=f"{self.name}+{weeks_later}w",
            topology=self.topology,
            calibration=drifted,
            quantum_volume=self.quantum_volume,
            basis_gates=self.basis_gates,
        )

    def __repr__(self) -> str:
        return (
            f"Device(name='{self.name}', n_qubits={self.n_qubits}, "
            f"qv={self.quantum_volume}, topology='{self.topology.name}')"
        )


@dataclass(frozen=True)
class _DeviceSpec:
    name: str
    topology_kind: str
    n_qubits: int
    quantum_volume: int
    targets: CalibrationTargets
    seed: int


def _targets(single: float, two: float, readout: float) -> CalibrationTargets:
    return CalibrationTargets(
        single_qubit_error=single, two_qubit_error=two, readout_error=readout
    )


# Error-rate targets follow the Fig. 21 table (x100 for the single-qubit
# column): e.g. Santiago 2.55e-4 / 6.3e-3 / 1.7e-2, Yorktown 6.5e-4 / 1.9e-2 /
# 5.9e-2.  Larger devices use mid-range values.
DEVICE_SPECS: Dict[str, _DeviceSpec] = {
    spec.name: spec
    for spec in [
        _DeviceSpec("yorktown", "bowtie", 5, 8, _targets(6.5e-4, 1.92e-2, 5.9e-2), 11),
        _DeviceSpec("santiago", "line", 5, 32, _targets(2.6e-4, 6.3e-3, 1.7e-2), 12),
        _DeviceSpec("rome", "line", 5, 32, _targets(2.9e-4, 1.05e-2, 2.3e-2), 13),
        _DeviceSpec("athens", "line", 5, 32, _targets(3.6e-4, 1.11e-2, 1.4e-2), 14),
        _DeviceSpec("lima", "t", 5, 8, _targets(3.2e-4, 1.01e-2, 2.6e-2), 15),
        _DeviceSpec("belem", "t", 5, 16, _targets(3.2e-4, 1.79e-2, 2.2e-2), 16),
        _DeviceSpec("quito", "t", 5, 16, _targets(5.1e-4, 1.0e-2, 2.2e-2), 17),
        _DeviceSpec("manila", "line", 5, 32, _targets(3.0e-4, 9.0e-3, 2.0e-2), 18),
        _DeviceSpec("jakarta", "h", 7, 16, _targets(3.0e-4, 8.5e-3, 2.1e-2), 19),
        _DeviceSpec("casablanca", "h", 7, 32, _targets(3.1e-4, 9.5e-3, 2.2e-2), 20),
        _DeviceSpec("melbourne", "ladder", 15, 8, _targets(6.0e-4, 2.2e-2, 4.5e-2), 21),
        _DeviceSpec("guadalupe", "heavy_hex", 16, 32, _targets(3.5e-4, 1.1e-2, 2.3e-2), 22),
        _DeviceSpec("montreal", "heavy_hex", 27, 128, _targets(2.8e-4, 8.0e-3, 1.9e-2), 23),
        _DeviceSpec("manhattan", "heavy_hex", 65, 32, _targets(4.0e-4, 1.3e-2, 2.6e-2), 24),
    ]
}


def _build_topology(spec: _DeviceSpec) -> Topology:
    kind = spec.topology_kind
    if kind == "line":
        return line_topology(spec.n_qubits, name=f"{spec.name}-line")
    if kind == "t":
        return t_topology(name=f"{spec.name}-t")
    if kind == "bowtie":
        return bowtie_topology(name=f"{spec.name}-bowtie")
    if kind == "h":
        return h_topology(name=f"{spec.name}-h")
    if kind == "ladder":
        return ladder_topology(spec.n_qubits, name=f"{spec.name}-ladder")
    if kind == "heavy_hex":
        return heavy_hex_like_topology(spec.n_qubits, name=f"{spec.name}-heavy-hex")
    raise ValueError(f"unknown topology kind '{kind}'")


def available_devices() -> List[str]:
    """Names of every device in the library."""
    return sorted(DEVICE_SPECS)


def get_device(name: str, calibration_seed: Optional[int] = None) -> Device:
    """Construct a device by name with its deterministic calibration."""
    key = name.lower().replace("ibmq-", "").replace("ibmq_", "")
    if key not in DEVICE_SPECS:
        raise KeyError(
            f"unknown device '{name}'; available: {', '.join(available_devices())}"
        )
    spec = DEVICE_SPECS[key]
    topology = _build_topology(spec)
    calibration = generate_calibration(
        topology,
        spec.targets,
        seed=spec.seed if calibration_seed is None else calibration_seed,
    )
    return Device(
        name=key,
        topology=topology,
        calibration=calibration,
        quantum_volume=spec.quantum_volume,
    )
