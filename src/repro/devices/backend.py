"""A shot-based quantum backend wrapping the noisy simulator.

This plays the role of "running on the real quantum computer" everywhere the
paper does so: finite shots, the device's live noise model, and the compiled
(routed + decomposed) physical circuit.  It differs from the performance
estimator in exactly the ways the real machine differs in the paper — the
estimator uses inherited parameters and a (possibly stale) calibration
snapshot, the backend runs the concrete compiled circuit with sampling noise.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from ..noise.models import NoiseModel
from ..quantum.circuit import QuantumCircuit
from ..quantum.density_matrix import DensityMatrixSimulator
from ..quantum.measurement import sample_counts
from ..quantum.statevector import probabilities as sv_probabilities
from ..quantum.statevector import run_circuit, zero_state
from ..transpile.compiler import CompiledCircuit, transpile
from ..utils.rng import ensure_rng
from .library import Device

__all__ = [
    "BackendResult",
    "QuantumBackend",
    "approximate_probabilities",
    "logical_probabilities",
]


def approximate_probabilities(
    reduced: QuantumCircuit, noise_model: NoiseModel
) -> np.ndarray:
    """Success-rate (global depolarizing) approximation for large circuits.

    Shared between the shot-based backend and the batched population execution
    engine so both fall back identically beyond the density-matrix regime.
    """
    states = run_circuit(reduced, states=zero_state(reduced.n_qubits, 1))
    ideal = sv_probabilities(states)[0]
    rate = noise_model.circuit_success_rate(reduced)
    uniform = np.full_like(ideal, 1.0 / ideal.size)
    return rate * ideal + (1.0 - rate) * uniform


def logical_probabilities(
    reduced_probs: np.ndarray,
    final_layout,
    used_physical: Sequence[int],
    n_logical: int,
) -> np.ndarray:
    """Marginalize/reorder reduced-register probabilities onto logical qubits.

    ``final_layout`` maps logical qubits to physical ones — either the dict
    itself or any object exposing one as ``.final_layout`` (a
    :class:`~repro.transpile.compiler.CompiledCircuit`, a parametric
    template).  Shared between the shot-based backend and the simulation
    backends so every engine maps physical measurement outcomes identically.
    """
    if not isinstance(final_layout, dict):
        final_layout = final_layout.final_layout
    k = len(used_physical)
    probs = np.asarray(reduced_probs, dtype=float).reshape((2,) * k)
    physical_to_reduced = {phys: i for i, phys in enumerate(used_physical)}
    logical_axes = []
    for logical in range(n_logical):
        physical = final_layout[logical]
        logical_axes.append(physical_to_reduced[physical])
    # Sum out every reduced axis that does not carry a logical qubit, then
    # order the remaining axes logically.
    keep = logical_axes
    drop = tuple(a for a in range(k) if a not in keep)
    marginal = probs.sum(axis=drop) if drop else probs
    # After dropping, remaining axes appear in increasing reduced order.
    remaining = [a for a in range(k) if a not in drop]
    order = [remaining.index(a) for a in keep]
    marginal = np.transpose(marginal, axes=order)
    flat = marginal.reshape(-1)
    total = flat.sum()
    return flat / total if total > 0 else flat


@dataclass
class BackendResult:
    """Measurement results of one backend execution."""

    probabilities: np.ndarray          # over the logical register, length 2**n_logical
    n_logical: int
    shots: int
    compiled: CompiledCircuit
    estimated_runtime_seconds: float

    def expectation_z(self, qubit: int) -> float:
        probs = self.probabilities.reshape((2,) * self.n_logical)
        axes = tuple(a for a in range(self.n_logical) if a != qubit)
        marginal = probs.sum(axis=axes)
        return float(marginal[0] - marginal[1])

    def expectation_z_all(self) -> np.ndarray:
        return np.array([self.expectation_z(q) for q in range(self.n_logical)])


class QuantumBackend:
    """Compile-and-run interface to a (synthetic) quantum computer."""

    #: circuit sizes above this threshold switch from full density-matrix
    #: simulation to the global-depolarizing success-rate approximation,
    #: mirroring the paper's small-circuit / large-circuit estimator split.
    def __init__(
        self,
        device: Device,
        shots: int = 8192,
        seed: Optional[int] = None,
        max_density_qubits: int = 10,
        queue_delay_seconds: float = 0.0,
        transpile_cache=None,
        parametric_cache=None,
    ) -> None:
        self.device = device
        self.shots = int(shots)
        self.rng = ensure_rng(seed)
        self.max_density_qubits = int(max_density_qubits)
        self.queue_delay_seconds = float(queue_delay_seconds)
        #: optional warm-start caches (repro.execution.cache), typically the
        #: search estimator's instances handed down by the pipeline so the
        #: deploy/evaluate stage reuses co-search compilations.  ``None``
        #: preserves the historical compile-per-run behavior exactly.
        self.transpile_cache = transpile_cache
        self.parametric_cache = parametric_cache
        self._executions = 0

    @property
    def executions(self) -> int:
        """Number of circuits executed so far (the paper's #QC runs budget)."""
        return self._executions

    def reseed(self, seed) -> None:
        """Pin the shot-sampling rng stream to ``seed``.

        Used wherever determinism must not depend on execution order: the
        sharded scheduler pins each worker's stream per shard task, and the
        shot-sampler simulation backend pins a stream per job so shot-based
        population scores are bit-for-bit independent of grouping and worker
        count.
        """
        self.rng = ensure_rng(seed)

    # -- execution -----------------------------------------------------------

    def run(
        self,
        circuit: QuantumCircuit,
        initial_layout=None,
        optimization_level: int = 2,
        shots: Optional[int] = None,
    ) -> BackendResult:
        """Transpile and execute a logical circuit, measuring all qubits."""
        if self.transpile_cache is not None:
            compiled = self.transpile_cache.get(
                circuit,
                self.device,
                initial_layout=initial_layout,
                optimization_level=optimization_level,
            )
        else:
            compiled = transpile(
                circuit,
                self.device,
                initial_layout=initial_layout,
                optimization_level=optimization_level,
            )
        return self.run_compiled(compiled, n_logical=circuit.n_qubits, shots=shots)

    def run_parameterized(
        self,
        circuit,
        weights,
        features_row=None,
        initial_layout=None,
        optimization_level: int = 2,
        shots: Optional[int] = None,
    ) -> BackendResult:
        """Bind and execute a :class:`ParameterizedCircuit` for one sample.

        With a :class:`~repro.execution.ParametricTranspileCache` attached,
        the circuit structure is compiled once and each sample is an
        O(params) template bind — this is what makes the deploy/evaluate
        stage (hundreds of samples, one structure) transpile-cheap.  Without
        caches it is exactly ``run(circuit.bind(weights, features_row))``.
        """
        if self.parametric_cache is not None:
            compiled = self.parametric_cache.get_bound(
                circuit,
                weights,
                features_row,
                self.device,
                initial_layout=initial_layout,
                optimization_level=optimization_level,
            )
            return self.run_compiled(
                compiled, n_logical=circuit.n_qubits, shots=shots
            )
        bound = (
            circuit.bind(weights, features_row)
            if features_row is not None
            else circuit.bind(weights)
        )
        return self.run(
            bound,
            initial_layout=initial_layout,
            optimization_level=optimization_level,
            shots=shots,
        )

    def run_compiled(
        self,
        compiled: CompiledCircuit,
        n_logical: int,
        shots: Optional[int] = None,
    ) -> BackendResult:
        """Execute an already-compiled circuit."""
        shots = self.shots if shots is None else int(shots)
        reduced, used_physical = compiled.reduced_circuit()
        noise_model = self.device.noise_model().reduced(used_physical)

        if reduced.n_qubits <= self.max_density_qubits:
            simulator = DensityMatrixSimulator(reduced.n_qubits, noise_model)
            reduced_probs = simulator.probabilities(reduced)
        else:
            reduced_probs = self._approximate_probabilities(
                reduced, noise_model
            )

        logical_probs = self._logical_probabilities(
            reduced_probs, compiled, used_physical, n_logical
        )
        if shots > 0:
            counts = sample_counts(logical_probs, shots, self.rng)
            logical_probs = counts / counts.sum()
        self._executions += 1
        runtime = self.queue_delay_seconds + shots * 5e-4
        return BackendResult(
            probabilities=logical_probs,
            n_logical=n_logical,
            shots=shots,
            compiled=compiled,
            estimated_runtime_seconds=runtime,
        )

    # -- internals -----------------------------------------------------------

    def _approximate_probabilities(
        self, reduced: QuantumCircuit, noise_model: NoiseModel
    ) -> np.ndarray:
        return approximate_probabilities(reduced, noise_model)

    def _logical_probabilities(
        self,
        reduced_probs: np.ndarray,
        compiled: CompiledCircuit,
        used_physical: Sequence[int],
        n_logical: int,
    ) -> np.ndarray:
        return logical_probabilities(reduced_probs, compiled, used_physical, n_logical)

    def record_executions(self, n: int = 1) -> None:
        """Count circuits executed on the backend's behalf by external engines.

        The batched population engine simulates compiled circuits itself but
        still charges them to the backend so the paper's #QC-runs budget
        (:attr:`executions`) stays comparable across engines.
        """
        self._executions += int(n)
