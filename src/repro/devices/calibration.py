"""Synthetic device calibration data.

Real IBMQ backends expose calibration data (T1/T2, gate and readout error
rates) refreshed roughly twice a day.  We synthesise per-qubit and per-edge
calibrations deterministically from a seed, centred on target average error
rates (taken from the ranges reported in Fig. 21 of the paper), and support
"drift": re-sampling around the same averages to model the passage of time
between search and deployment (the "tested 3 weeks later" experiment).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Tuple

import numpy as np

from ..noise.models import NoiseModel, QubitNoiseParameters
from ..utils.rng import ensure_rng
from .topology import Topology

__all__ = ["CalibrationTargets", "Calibration", "generate_calibration"]


@dataclass(frozen=True)
class CalibrationTargets:
    """Average error rates a device's calibration is centred on."""

    single_qubit_error: float = 5e-4
    two_qubit_error: float = 1e-2
    readout_error: float = 2e-2
    t1: float = 90.0   # microseconds
    t2: float = 75.0   # microseconds
    spread: float = 0.35  # relative lognormal-ish spread across qubits/edges


@dataclass
class Calibration:
    """Concrete per-qubit / per-edge calibration snapshot."""

    qubits: Dict[int, QubitNoiseParameters]
    edge_errors: Dict[Tuple[int, int], float]
    targets: CalibrationTargets
    seed: int

    def noise_model(self) -> NoiseModel:
        model = NoiseModel(
            qubits=dict(self.qubits), two_qubit_errors=dict(self.edge_errors)
        )
        model.default_two_qubit_error = self.targets.two_qubit_error
        return model

    def average_two_qubit_error(self) -> float:
        if not self.edge_errors:
            return self.targets.two_qubit_error
        return float(np.mean(list(self.edge_errors.values())))

    def average_readout_error(self) -> float:
        return float(np.mean([q.readout_error for q in self.qubits.values()]))

    def average_single_qubit_error(self) -> float:
        return float(
            np.mean([q.single_qubit_error for q in self.qubits.values()])
        )

    def drift(self, drift_scale: float = 0.15, seed_offset: int = 1) -> "Calibration":
        """A re-calibrated snapshot: same averages, perturbed per-qubit values.

        ``drift_scale`` controls how far individual values wander from the
        current snapshot; the averages stay close to the device targets, which
        is why circuits searched earlier remain noise-resilient (Fig. 14).
        """
        rng = ensure_rng(self.seed + 104729 * seed_offset)
        qubits: Dict[int, QubitNoiseParameters] = {}
        for index, params in self.qubits.items():
            factor = float(np.exp(rng.normal(0.0, drift_scale)))
            qubits[index] = QubitNoiseParameters(
                t1=params.t1 / factor,
                t2=min(params.t2 / factor, 2.0 * params.t1 / factor),
                readout_p01=min(params.readout_p01 * factor, 0.5),
                readout_p10=min(params.readout_p10 * factor, 0.5),
                single_qubit_error=min(params.single_qubit_error * factor, 0.5),
            )
        edge_errors = {
            edge: min(error * float(np.exp(rng.normal(0.0, drift_scale))), 0.5)
            for edge, error in self.edge_errors.items()
        }
        return Calibration(
            qubits=qubits,
            edge_errors=edge_errors,
            targets=self.targets,
            seed=self.seed + seed_offset,
        )


def _spread_sample(rng: np.random.Generator, mean: float, spread: float) -> float:
    """Sample a positive value with the given mean and relative spread."""
    return float(mean * np.exp(rng.normal(0.0, spread) - 0.5 * spread**2))


def generate_calibration(
    topology: Topology,
    targets: CalibrationTargets,
    seed: int,
) -> Calibration:
    """Deterministically synthesise a calibration snapshot for a topology."""
    rng = ensure_rng(seed)
    qubits: Dict[int, QubitNoiseParameters] = {}
    for qubit in range(topology.n_qubits):
        t1 = max(_spread_sample(rng, targets.t1, targets.spread), 5.0)
        t2 = min(max(_spread_sample(rng, targets.t2, targets.spread), 5.0), 2.0 * t1)
        qubits[qubit] = QubitNoiseParameters(
            t1=t1,
            t2=t2,
            readout_p01=min(_spread_sample(rng, targets.readout_error, targets.spread), 0.5),
            readout_p10=min(
                _spread_sample(rng, targets.readout_error, targets.spread), 0.5
            ),
            single_qubit_error=min(
                _spread_sample(rng, targets.single_qubit_error, targets.spread), 0.5
            ),
        )
    edge_errors: Dict[Tuple[int, int], float] = {}
    for edge in topology.edges:
        edge_errors[edge] = min(
            _spread_sample(rng, targets.two_qubit_error, targets.spread), 0.5
        )
    return Calibration(
        qubits=qubits, edge_errors=edge_errors, targets=targets, seed=seed
    )
