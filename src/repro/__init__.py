"""QuantumNAS reproduction: noise-adaptive search for robust quantum circuits.

The package is organised as:

* :mod:`repro.quantum`   — trainable-circuit simulator (TorchQuantum-like engine)
* :mod:`repro.noise`     — noise channels and device noise models
* :mod:`repro.devices`   — synthetic IBMQ-like devices and the shot-based backend
* :mod:`repro.transpile` — layout, routing, basis decomposition, optimization
* :mod:`repro.qml`       — quantum-machine-learning layer (encoders, QNNs, training)
* :mod:`repro.vqe`       — variational-quantum-eigensolver layer (molecules, UCCSD)
* :mod:`repro.core`      — QuantumNAS itself (SuperCircuit, co-search, pruning)
* :mod:`repro.execution` — batched population-evaluation engine for the co-search
* :mod:`repro.backends`  — pluggable simulation backends with per-group dispatch
* :mod:`repro.service`   — multi-tenant co-search service (shared worker pools)
* :mod:`repro.baselines` — human / random / noise-unaware baselines
"""

__version__ = "0.1.0"

from . import (
    backends,
    baselines,
    core,
    devices,
    execution,
    noise,
    qml,
    quantum,
    service,
    transpile,
    utils,
    vqe,
)

__all__ = [
    "backends",
    "baselines",
    "core",
    "devices",
    "execution",
    "noise",
    "qml",
    "quantum",
    "service",
    "transpile",
    "utils",
    "vqe",
    "__version__",
]
