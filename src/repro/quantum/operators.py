"""Pauli-string observables and weighted sums of them.

These are the observables measured by the QML readout layer (single-qubit
Pauli-Z expectations) and by VQE (molecular Hamiltonians expressed as weighted
sums of Pauli strings).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Sequence, Tuple

import numpy as np

from .gates import PAULI_I, PAULI_X, PAULI_Y, PAULI_Z

__all__ = ["PauliString", "PauliSum", "group_commuting"]

_PAULI_MATRICES = {"I": PAULI_I, "X": PAULI_X, "Y": PAULI_Y, "Z": PAULI_Z}


@dataclass(frozen=True)
class PauliString:
    """A tensor product of Pauli operators with a real coefficient.

    ``paulis`` maps qubit index to one of ``"X"``, ``"Y"``, ``"Z"``.  Qubits
    absent from the mapping carry the identity.
    """

    coefficient: float
    paulis: Tuple[Tuple[int, str], ...]

    @staticmethod
    def from_dict(coefficient: float, paulis: Mapping[int, str]) -> "PauliString":
        cleaned = {}
        for qubit, label in paulis.items():
            label = label.upper()
            if label == "I":
                continue
            if label not in ("X", "Y", "Z"):
                raise ValueError(f"invalid Pauli label '{label}'")
            cleaned[int(qubit)] = label
        ordered = tuple(sorted(cleaned.items()))
        return PauliString(float(coefficient), ordered)

    @staticmethod
    def from_label(coefficient: float, label: str) -> "PauliString":
        """Build from a dense label, e.g. ``"XIZY"`` (qubit 0 first)."""
        mapping = {i: ch for i, ch in enumerate(label.upper()) if ch != "I"}
        return PauliString.from_dict(coefficient, mapping)

    @property
    def qubits(self) -> Tuple[int, ...]:
        return tuple(q for q, _ in self.paulis)

    @property
    def is_identity(self) -> bool:
        return not self.paulis

    def label(self, n_qubits: int) -> str:
        chars = ["I"] * n_qubits
        for qubit, pauli in self.paulis:
            chars[qubit] = pauli
        return "".join(chars)

    def weight(self) -> int:
        """Number of non-identity factors (Pauli weight)."""
        return len(self.paulis)

    def to_matrix(self, n_qubits: int) -> np.ndarray:
        """Dense matrix representation (for small systems / tests)."""
        mapping = dict(self.paulis)
        out = np.array([[1.0 + 0.0j]])
        for qubit in range(n_qubits):
            out = np.kron(out, _PAULI_MATRICES[mapping.get(qubit, "I")])
        return self.coefficient * out

    def with_coefficient(self, coefficient: float) -> "PauliString":
        return PauliString(float(coefficient), self.paulis)

    def commutes_qubitwise(self, other: "PauliString") -> bool:
        """Qubit-wise commutation: shared qubits must carry identical Paulis."""
        mine = dict(self.paulis)
        for qubit, pauli in other.paulis:
            if qubit in mine and mine[qubit] != pauli:
                return False
        return True


@dataclass
class PauliSum:
    """A weighted sum of :class:`PauliString` terms."""

    terms: List[PauliString] = field(default_factory=list)

    @staticmethod
    def from_terms(terms: Iterable[Tuple[float, Mapping[int, str]]]) -> "PauliSum":
        return PauliSum([PauliString.from_dict(c, p) for c, p in terms])

    @staticmethod
    def from_labels(terms: Iterable[Tuple[float, str]]) -> "PauliSum":
        return PauliSum([PauliString.from_label(c, label) for c, label in terms])

    def __len__(self) -> int:
        return len(self.terms)

    def __iter__(self):
        return iter(self.terms)

    def __add__(self, other: "PauliSum") -> "PauliSum":
        return PauliSum(self.terms + other.terms)

    @property
    def n_qubits_min(self) -> int:
        """Smallest register size that can host every term."""
        highest = -1
        for term in self.terms:
            if term.paulis:
                highest = max(highest, max(term.qubits))
        return highest + 1

    @property
    def constant(self) -> float:
        """Sum of identity-term coefficients."""
        return sum(t.coefficient for t in self.terms if t.is_identity)

    def simplify(self, tol: float = 1e-12) -> "PauliSum":
        """Merge duplicate Pauli strings and drop negligible terms."""
        merged: Dict[Tuple[Tuple[int, str], ...], float] = {}
        for term in self.terms:
            merged[term.paulis] = merged.get(term.paulis, 0.0) + term.coefficient
        terms = [
            PauliString(coeff, paulis)
            for paulis, coeff in merged.items()
            if abs(coeff) > tol
        ]
        terms.sort(key=lambda t: (t.weight(), t.paulis))
        return PauliSum(terms)

    def to_matrix(self, n_qubits: int) -> np.ndarray:
        """Dense Hamiltonian matrix (exponential in ``n_qubits``)."""
        dim = 2**n_qubits
        out = np.zeros((dim, dim), dtype=complex)
        for term in self.terms:
            out += term.to_matrix(n_qubits)
        return out

    def ground_energy_dense(self, n_qubits: int) -> float:
        """Exact ground-state energy from dense diagonalisation."""
        eigvals = np.linalg.eigvalsh(self.to_matrix(n_qubits))
        return float(eigvals[0])

    def scaled(self, factor: float) -> "PauliSum":
        return PauliSum([t.with_coefficient(t.coefficient * factor) for t in self.terms])

    def shifted(self, constant: float) -> "PauliSum":
        return PauliSum(self.terms + [PauliString(float(constant), ())])


def group_commuting(observable: PauliSum) -> List[List[PauliString]]:
    """Greedy grouping of terms into qubit-wise commuting measurement groups.

    VQE measures each group with one circuit (one basis-rotation setting), so
    fewer groups means fewer device runs — the same strategy Qiskit uses.
    """
    groups: List[List[PauliString]] = []
    for term in sorted(observable.terms, key=lambda t: -t.weight()):
        if term.is_identity:
            continue
        placed = False
        for group in groups:
            if all(term.commutes_qubitwise(member) for member in group):
                group.append(term)
                placed = True
                break
        if not placed:
            groups.append([term])
    return groups
