"""Shot-based measurement utilities.

Used by the device backend (finite-shot runs, as on real IBMQ machines) and by
the VQE measurement pipeline (basis rotations + Z-basis counts).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..utils.rng import ensure_rng
from .circuit import QuantumCircuit
from .operators import PauliString, PauliSum, group_commuting

__all__ = [
    "sample_counts",
    "counts_to_probabilities",
    "expectation_z_from_probabilities",
    "expectation_z_all_from_probabilities",
    "basis_change_circuit",
    "pauli_expectation_from_probabilities",
    "MeasurementPlan",
]


def sample_counts(
    probabilities: np.ndarray, shots: int, rng: Optional[np.random.Generator] = None
) -> np.ndarray:
    """Sample ``shots`` measurement outcomes; returns counts per basis state."""
    rng = ensure_rng(rng)
    probs = np.clip(np.asarray(probabilities, dtype=float), 0.0, None)
    total = probs.sum()
    if total <= 0:
        raise ValueError("probability vector sums to zero")
    probs = probs / total
    return rng.multinomial(shots, probs).astype(float)


def counts_to_probabilities(counts: np.ndarray) -> np.ndarray:
    counts = np.asarray(counts, dtype=float)
    total = counts.sum()
    if total <= 0:
        raise ValueError("no counts recorded")
    return counts / total


def expectation_z_from_probabilities(
    probabilities: np.ndarray, qubit: int, n_qubits: int
) -> float:
    """Z expectation on one qubit from a basis-state probability vector."""
    probs = np.asarray(probabilities, dtype=float).reshape((2,) * n_qubits)
    axes = tuple(a for a in range(n_qubits) if a != qubit)
    marginal = probs.sum(axis=axes)
    return float(marginal[0] - marginal[1])


def expectation_z_all_from_probabilities(
    probabilities: np.ndarray, n_qubits: int
) -> np.ndarray:
    return np.array(
        [
            expectation_z_from_probabilities(probabilities, qubit, n_qubits)
            for qubit in range(n_qubits)
        ]
    )


def basis_change_circuit(n_qubits: int, bases: Dict[int, str]) -> QuantumCircuit:
    """Circuit rotating the given per-qubit Pauli bases onto the Z axis."""
    circuit = QuantumCircuit(n_qubits)
    for qubit, pauli in sorted(bases.items()):
        pauli = pauli.upper()
        if pauli == "X":
            circuit.add("h", (qubit,))
        elif pauli == "Y":
            circuit.add("sdg", (qubit,))
            circuit.add("h", (qubit,))
        elif pauli == "Z":
            continue
        else:
            raise ValueError(f"invalid Pauli basis '{pauli}'")
    return circuit


def pauli_expectation_from_probabilities(
    probabilities: np.ndarray, term: PauliString, n_qubits: int
) -> float:
    """Expectation of a Pauli string given Z-basis probabilities *after* the
    appropriate basis change has already been applied to the circuit."""
    if term.is_identity:
        return term.coefficient
    probs = np.asarray(probabilities, dtype=float).reshape((2,) * n_qubits)
    qubits = term.qubits
    axes = tuple(a for a in range(n_qubits) if a not in qubits)
    marginal = probs.sum(axis=axes) if axes else probs
    # marginal is indexed by the retained qubits in increasing order
    value = 0.0
    for outcome in np.ndindex(*marginal.shape):
        parity = (-1) ** (sum(outcome) % 2)
        value += parity * marginal[outcome]
    return term.coefficient * float(value)


class MeasurementPlan:
    """Groups a Pauli-sum observable into simultaneously measurable settings.

    Each group is measured by appending one basis-change circuit and reading
    all qubits in the Z basis — exactly how VQE expectation values are
    estimated on hardware ("we prepare the state multiple times for
    measurements on different qubits and bases").
    """

    def __init__(self, observable: PauliSum, n_qubits: int) -> None:
        self.observable = observable
        self.n_qubits = n_qubits
        self.groups: List[List[PauliString]] = group_commuting(observable)
        self.constant = observable.constant
        self._settings: Optional[
            List[Tuple[QuantumCircuit, List[PauliString]]]
        ] = None

    def __len__(self) -> int:
        return len(self.groups)

    def settings(self) -> List[Tuple[QuantumCircuit, List[PauliString]]]:
        """(basis-change circuit, terms measured in that setting) pairs.

        Memoized: a parameter-shift gradient of a measured energy evaluates
        the same settings ``2 * num_weights + 1`` times per step, and plans
        are hoisted per task (the estimator's per-task cache), so the
        basis-change circuits are derived once per plan, not once per
        shifted evaluation.  Callers must treat the returned list (and its
        circuits) as immutable.
        """
        if self._settings is None:
            out = []
            for group in self.groups:
                bases: Dict[int, str] = {}
                for term in group:
                    for qubit, pauli in term.paulis:
                        bases[qubit] = pauli
                out.append((basis_change_circuit(self.n_qubits, bases), group))
            self._settings = out
        return self._settings

    def expectation_from_group_probabilities(
        self, group_probabilities: Sequence[np.ndarray]
    ) -> float:
        """Combine per-setting probability vectors into <H>."""
        if len(group_probabilities) != len(self.groups):
            raise ValueError("one probability vector per measurement group required")
        total = self.constant
        for probs, group in zip(group_probabilities, self.groups):
            for term in group:
                total += pauli_expectation_from_probabilities(
                    probs, term, self.n_qubits
                )
        return float(total)
