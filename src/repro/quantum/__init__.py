"""Quantum circuit simulation substrate (the TorchQuantum-like engine)."""

from .circuit import (
    Instruction,
    ParamOp,
    ParamSlot,
    ParameterizedCircuit,
    QuantumCircuit,
    const,
    feature,
    weight,
)
from .gates import (
    GATES,
    gate_gradients,
    gate_matrix,
    gate_num_params,
    gate_num_qubits,
    is_parameterized,
)
from .operators import PauliString, PauliSum, group_commuting
from .statevector import (
    apply_matrix,
    circuit_unitary,
    expectation_pauli_string,
    expectation_pauli_sum,
    expectation_z,
    expectation_z_all,
    probabilities,
    run_circuit,
    run_parameterized,
    state_fidelity,
    zero_state,
)
from .fusion import FusedCircuit, fuse_circuit
from .autodiff import (
    adjoint_gradient,
    finite_difference_gradient,
    parameter_shift_jacobian,
)
from .density_matrix import DensityMatrixSimulator, purity, zero_density_matrix
from .measurement import MeasurementPlan, sample_counts

__all__ = [
    "Instruction",
    "ParamOp",
    "ParamSlot",
    "ParameterizedCircuit",
    "QuantumCircuit",
    "const",
    "feature",
    "weight",
    "GATES",
    "gate_gradients",
    "gate_matrix",
    "gate_num_params",
    "gate_num_qubits",
    "is_parameterized",
    "PauliString",
    "PauliSum",
    "group_commuting",
    "apply_matrix",
    "circuit_unitary",
    "expectation_pauli_string",
    "expectation_pauli_sum",
    "expectation_z",
    "expectation_z_all",
    "probabilities",
    "run_circuit",
    "run_parameterized",
    "state_fidelity",
    "zero_state",
    "FusedCircuit",
    "fuse_circuit",
    "adjoint_gradient",
    "finite_difference_gradient",
    "parameter_shift_jacobian",
    "DensityMatrixSimulator",
    "purity",
    "zero_density_matrix",
    "MeasurementPlan",
    "sample_counts",
]
