"""Quantum circuit intermediate representation.

Two layers of representation are used throughout the repository:

* :class:`QuantumCircuit` — a concrete circuit whose instruction parameters are
  plain floats.  This is what the transpiler, the noisy density-matrix
  simulator and the device backend consume.

* :class:`ParameterizedCircuit` — a circuit template whose parameters may be
  bound to a trainable weight vector (``weight`` slots) or to per-sample input
  features (``input`` slots).  This is the TorchQuantum-style trainable module
  the QML/VQE layers and QuantumNAS operate on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from ..utils.rng import ensure_rng
from .gates import gate_matrix, gate_num_params, gate_num_qubits, canonical_name

__all__ = [
    "Instruction",
    "QuantumCircuit",
    "ParamSlot",
    "const",
    "weight",
    "feature",
    "ParamOp",
    "ParameterizedCircuit",
]


@dataclass(frozen=True)
class Instruction:
    """A concrete gate application: name, target qubits and float parameters."""

    gate: str
    qubits: Tuple[int, ...]
    params: Tuple[float, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "gate", canonical_name(self.gate))
        object.__setattr__(self, "qubits", tuple(int(q) for q in self.qubits))
        object.__setattr__(self, "params", tuple(float(p) for p in self.params))
        expected_qubits = gate_num_qubits(self.gate)
        if len(self.qubits) != expected_qubits:
            raise ValueError(
                f"gate '{self.gate}' acts on {expected_qubits} qubits, "
                f"got {len(self.qubits)}"
            )
        if len(set(self.qubits)) != len(self.qubits):
            raise ValueError(f"duplicate qubits in instruction: {self.qubits}")
        expected_params = gate_num_params(self.gate)
        if len(self.params) != expected_params:
            raise ValueError(
                f"gate '{self.gate}' expects {expected_params} parameters, "
                f"got {len(self.params)}"
            )

    def matrix(self) -> np.ndarray:
        return gate_matrix(self.gate, self.params)

    @property
    def is_two_qubit(self) -> bool:
        return len(self.qubits) == 2


class QuantumCircuit:
    """An ordered list of :class:`Instruction` on ``n_qubits`` wires."""

    def __init__(
        self, n_qubits: int, instructions: Optional[Iterable[Instruction]] = None
    ) -> None:
        if n_qubits < 1:
            raise ValueError("circuit needs at least one qubit")
        self.n_qubits = int(n_qubits)
        self.instructions: List[Instruction] = []
        for instruction in instructions or ():
            self.append(instruction)

    # -- construction ------------------------------------------------------

    def append(self, instruction: Instruction) -> "QuantumCircuit":
        if max(instruction.qubits) >= self.n_qubits:
            raise ValueError(
                f"instruction {instruction} addresses qubit outside register of "
                f"size {self.n_qubits}"
            )
        self.instructions.append(instruction)
        return self

    def add(
        self, gate: str, qubits: Sequence[int], params: Sequence[float] = ()
    ) -> "QuantumCircuit":
        return self.append(Instruction(gate, tuple(qubits), tuple(params)))

    def extend(self, instructions: Iterable[Instruction]) -> "QuantumCircuit":
        for instruction in instructions:
            self.append(instruction)
        return self

    def copy(self) -> "QuantumCircuit":
        return QuantumCircuit(self.n_qubits, list(self.instructions))

    def compose(self, other: "QuantumCircuit") -> "QuantumCircuit":
        """Return a new circuit with ``other`` appended after ``self``."""
        if other.n_qubits > self.n_qubits:
            raise ValueError("cannot compose a larger circuit onto a smaller one")
        out = self.copy()
        out.extend(other.instructions)
        return out

    def inverse(self) -> "QuantumCircuit":
        """The adjoint circuit (only defined for self-describable gates).

        Parameterized rotations invert by negating parameters; fixed gates that
        are their own inverse are reversed in place.  Gates without a simple
        inverse rule raise ``ValueError``.
        """
        self_inverse = {"i", "x", "y", "z", "h", "cx", "cz", "cy", "swap"}
        negate = {
            "rx",
            "ry",
            "rz",
            "u1",
            "rxx",
            "ryy",
            "rzz",
            "rzx",
            "crx",
            "cry",
            "crz",
            "cu1",
        }
        paired = {"s": "sdg", "sdg": "s", "t": "tdg", "tdg": "t", "sx": "sxdg", "sxdg": "sx"}
        out = QuantumCircuit(self.n_qubits)
        for instruction in reversed(self.instructions):
            if instruction.gate in self_inverse:
                out.append(instruction)
            elif instruction.gate in negate:
                out.add(
                    instruction.gate,
                    instruction.qubits,
                    tuple(-p for p in instruction.params),
                )
            elif instruction.gate in paired:
                out.add(paired[instruction.gate], instruction.qubits)
            elif instruction.gate == "u3":
                theta, phi, lam = instruction.params
                out.add("u3", instruction.qubits, (-theta, -lam, -phi))
            elif instruction.gate == "cu3":
                theta, phi, lam = instruction.params
                out.add("cu3", instruction.qubits, (-theta, -lam, -phi))
            else:
                raise ValueError(f"no inverse rule for gate '{instruction.gate}'")
        return out

    # -- properties --------------------------------------------------------

    def __len__(self) -> int:
        return len(self.instructions)

    def __iter__(self):
        return iter(self.instructions)

    def count_ops(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for instruction in self.instructions:
            counts[instruction.gate] = counts.get(instruction.gate, 0) + 1
        return counts

    def num_two_qubit_gates(self) -> int:
        return sum(1 for op in self.instructions if op.is_two_qubit)

    def num_single_qubit_gates(self) -> int:
        return sum(1 for op in self.instructions if not op.is_two_qubit)

    def depth(self) -> int:
        """Circuit depth: the longest chain of dependent instructions."""
        frontier = [0] * self.n_qubits
        for instruction in self.instructions:
            level = max(frontier[q] for q in instruction.qubits) + 1
            for qubit in instruction.qubits:
                frontier[qubit] = level
        return max(frontier) if frontier else 0

    def to_unitary(self) -> np.ndarray:
        """Dense unitary of the whole circuit (small circuits / tests only)."""
        from .statevector import circuit_unitary

        return circuit_unitary(self)

    def __repr__(self) -> str:
        return (
            f"QuantumCircuit(n_qubits={self.n_qubits}, "
            f"n_instructions={len(self.instructions)}, depth={self.depth()})"
        )


# ---------------------------------------------------------------------------
# Parameterized circuits
# ---------------------------------------------------------------------------

_CONST = "const"
_WEIGHT = "weight"
_INPUT = "input"


@dataclass(frozen=True)
class ParamSlot:
    """One parameter slot of a parameterized operation.

    ``kind`` is one of ``"const"`` (fixed float value), ``"weight"`` (index
    into the trainable weight vector) or ``"input"`` (index into the per-sample
    feature vector).
    """

    kind: str
    value: float | int

    def __post_init__(self) -> None:
        if self.kind not in (_CONST, _WEIGHT, _INPUT):
            raise ValueError(f"invalid parameter slot kind '{self.kind}'")


def const(value: float) -> ParamSlot:
    """A fixed parameter value."""
    return ParamSlot(_CONST, float(value))


def weight(index: int) -> ParamSlot:
    """A trainable parameter, stored at ``index`` of the weight vector."""
    return ParamSlot(_WEIGHT, int(index))


def feature(index: int) -> ParamSlot:
    """A data-dependent parameter taken from input feature ``index``."""
    return ParamSlot(_INPUT, int(index))


@dataclass(frozen=True)
class ParamOp:
    """A gate whose parameters are resolved at bind time."""

    gate: str
    qubits: Tuple[int, ...]
    slots: Tuple[ParamSlot, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "gate", canonical_name(self.gate))
        object.__setattr__(self, "qubits", tuple(int(q) for q in self.qubits))
        expected = gate_num_params(self.gate)
        if len(self.slots) != expected:
            raise ValueError(
                f"gate '{self.gate}' expects {expected} parameter slots, "
                f"got {len(self.slots)}"
            )

    @property
    def weight_indices(self) -> Tuple[int, ...]:
        return tuple(int(s.value) for s in self.slots if s.kind == _WEIGHT)

    @property
    def uses_input(self) -> bool:
        return any(s.kind == _INPUT for s in self.slots)

    @property
    def is_trainable(self) -> bool:
        return any(s.kind == _WEIGHT for s in self.slots)


class ParameterizedCircuit:
    """A trainable circuit template (TorchQuantum-style quantum module).

    The template owns a weight vector of size :attr:`num_weights`; operations
    reference weights and/or per-sample input features via :class:`ParamSlot`.
    """

    def __init__(self, n_qubits: int) -> None:
        self.n_qubits = int(n_qubits)
        self.ops: List[ParamOp] = []
        self._num_weights = 0

    # -- construction ------------------------------------------------------

    def add_fixed(self, gate: str, qubits: Sequence[int], params: Sequence[float] = ()):
        slots = tuple(const(p) for p in params)
        self.ops.append(ParamOp(gate, tuple(qubits), slots))
        return self

    def add_trainable(
        self,
        gate: str,
        qubits: Sequence[int],
        fixed_mask: Optional[Sequence[bool]] = None,
    ) -> Tuple[int, ...]:
        """Append a gate whose parameters are fresh trainable weights.

        ``fixed_mask`` marks parameter positions that should be constant zero
        (used by pruning to drop individual angles of a U3 gate).  Returns the
        indices of the newly created weights.
        """
        n_params = gate_num_params(gate)
        if fixed_mask is None:
            fixed_mask = [False] * n_params
        if len(fixed_mask) != n_params:
            raise ValueError("fixed_mask length must match the gate's parameter count")
        slots: List[ParamSlot] = []
        created: List[int] = []
        for is_fixed in fixed_mask:
            if is_fixed:
                slots.append(const(0.0))
            else:
                slots.append(weight(self._num_weights))
                created.append(self._num_weights)
                self._num_weights += 1
        self.ops.append(ParamOp(gate, tuple(qubits), tuple(slots)))
        return tuple(created)

    def add_encoder(
        self, gate: str, qubits: Sequence[int], feature_indices: Sequence[int]
    ) -> "ParameterizedCircuit":
        """Append a data-encoding gate fed by input features."""
        n_params = gate_num_params(gate)
        if len(feature_indices) != n_params:
            raise ValueError("feature_indices length must match the gate's parameters")
        slots = tuple(feature(i) for i in feature_indices)
        self.ops.append(ParamOp(gate, tuple(qubits), slots))
        return self

    def add_op(self, op: ParamOp) -> "ParameterizedCircuit":
        for index in op.weight_indices:
            self._num_weights = max(self._num_weights, index + 1)
        self.ops.append(op)
        return self

    # -- inspection --------------------------------------------------------

    @property
    def num_weights(self) -> int:
        return self._num_weights

    def ensure_num_weights(self, n_weights: int) -> "ParameterizedCircuit":
        """Grow the declared weight-vector size (never shrinks).

        Used when a circuit references a *shared* parameter space (e.g. a
        SubCircuit reading SuperCircuit parameters) that is larger than the set
        of weights it actually touches.
        """
        self._num_weights = max(self._num_weights, int(n_weights))
        return self

    @property
    def trainable_ops(self) -> List[ParamOp]:
        return [op for op in self.ops if op.is_trainable]

    def __len__(self) -> int:
        return len(self.ops)

    def __iter__(self):
        return iter(self.ops)

    def init_weights(self, rng: Optional[np.random.Generator] = None) -> np.ndarray:
        """Random initial weights uniform in ``[-pi, pi)`` (paper's convention)."""
        rng = ensure_rng(rng)
        return rng.uniform(-np.pi, np.pi, size=self.num_weights)

    # -- binding -----------------------------------------------------------

    def resolve_params(
        self,
        op: ParamOp,
        weights: np.ndarray,
        features: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Resolve one op's parameters.

        Returns an array of shape ``(n_params,)`` for sample-independent ops,
        or ``(batch, n_params)`` when the op reads input features and
        ``features`` has shape ``(batch, n_features)``.
        """
        if op.uses_input:
            if features is None:
                raise ValueError("operation reads input features but none were given")
            batch = features.shape[0]
            out = np.zeros((batch, len(op.slots)))
            for position, slot in enumerate(op.slots):
                if slot.kind == _CONST:
                    out[:, position] = slot.value
                elif slot.kind == _WEIGHT:
                    out[:, position] = weights[int(slot.value)]
                else:
                    out[:, position] = features[:, int(slot.value)]
            return out
        values = np.zeros(len(op.slots))
        for position, slot in enumerate(op.slots):
            if slot.kind == _CONST:
                values[position] = slot.value
            elif slot.kind == _WEIGHT:
                values[position] = weights[int(slot.value)]
            else:  # pragma: no cover - guarded by op.uses_input above
                raise AssertionError
        return values

    def bind(
        self, weights: np.ndarray, features_row: Optional[np.ndarray] = None
    ) -> QuantumCircuit:
        """Produce a concrete :class:`QuantumCircuit` for one sample."""
        weights = np.asarray(weights, dtype=float)
        if weights.shape != (self.num_weights,):
            raise ValueError(
                f"expected weight vector of shape ({self.num_weights},), "
                f"got {weights.shape}"
            )
        circuit = QuantumCircuit(self.n_qubits)
        for op in self.ops:
            params: List[float] = []
            for slot in op.slots:
                if slot.kind == _CONST:
                    params.append(float(slot.value))
                elif slot.kind == _WEIGHT:
                    params.append(float(weights[int(slot.value)]))
                else:
                    if features_row is None:
                        raise ValueError(
                            "circuit contains encoder gates; provide features_row"
                        )
                    params.append(float(features_row[int(slot.value)]))
            circuit.add(op.gate, op.qubits, params)
        return circuit

    def weight_to_ops(self) -> Dict[int, List[int]]:
        """Map weight index -> indices of ops that read it."""
        mapping: Dict[int, List[int]] = {}
        for op_index, op in enumerate(self.ops):
            for widx in op.weight_indices:
                mapping.setdefault(widx, []).append(op_index)
        return mapping

    def __repr__(self) -> str:
        return (
            f"ParameterizedCircuit(n_qubits={self.n_qubits}, n_ops={len(self.ops)}, "
            f"num_weights={self.num_weights})"
        )
