"""Gradient engines for parameterized circuits.

Three modes are provided, mirroring the training modes discussed in the paper:

* :func:`adjoint_gradient` — analytic reverse-mode ("backprop") gradients of
  expectation values, computed with a single forward and a single reverse
  sweep.  This is the fast classical-simulation training mode.
* :func:`parameter_shift_jacobian` — the hardware-compatible parameter-shift
  rule (exact for single-generator rotation gates), used to demonstrate
  on-device training (Table V / Fig. 16).
* :func:`finite_difference_gradient` — a reference implementation used by the
  test-suite to validate the other two.
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from .circuit import ParameterizedCircuit
from .gates import gate_gradients, gate_matrix
from .operators import PauliSum
from .statevector import (
    apply_matrix,
    apply_pauli,
    apply_pauli_sum,
    run_parameterized,
)

__all__ = [
    "adjoint_gradient",
    "parameter_shift_jacobian",
    "finite_difference_gradient",
    "SHIFT_EXACT_GATES",
]

#: Gates for which the two-term parameter-shift rule is exact (their
#: parameters each enter through a single ±1/2-spectrum generator).
SHIFT_EXACT_GATES = frozenset(
    {"rx", "ry", "rz", "u1", "u2", "u3", "rxx", "ryy", "rzz", "rzx"}
)


def _weighted_z_apply(states: np.ndarray, z_coefficients: np.ndarray) -> np.ndarray:
    """Apply ``sum_q c_{b,q} Z_q`` with per-sample coefficients ``c``."""
    n_qubits = states.ndim - 1
    out = np.zeros_like(states)
    shape = (-1,) + (1,) * n_qubits
    for qubit in range(n_qubits):
        coeff = z_coefficients[:, qubit].reshape(shape)
        out = out + coeff * apply_pauli(states, qubit, "z")
    return out


def _dagger(matrix: np.ndarray) -> np.ndarray:
    if matrix.ndim == 3:
        return np.conj(np.swapaxes(matrix, 1, 2))
    return matrix.conj().T


def _batched_matrix(gate: str, params: np.ndarray) -> np.ndarray:
    if params.ndim == 2:
        return np.stack([gate_matrix(gate, row) for row in params])
    return gate_matrix(gate, params)


def _batched_gradients(gate: str, params: np.ndarray) -> list[np.ndarray]:
    """Per-parameter dU/dp, batched when params is 2-D."""
    if params.ndim == 2:
        per_sample = [gate_gradients(gate, row) for row in params]
        n_params = len(per_sample[0])
        return [np.stack([g[p] for g in per_sample]) for p in range(n_params)]
    return list(gate_gradients(gate, params))


def adjoint_gradient(
    pcirc: ParameterizedCircuit,
    weights: np.ndarray,
    features: Optional[np.ndarray] = None,
    *,
    z_coefficients: Optional[np.ndarray] = None,
    observable: Optional[PauliSum] = None,
    states_final: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Gradient of a weighted observable expectation with respect to weights.

    Exactly one of ``z_coefficients`` or ``observable`` must be given:

    * ``z_coefficients`` of shape ``(batch, n_qubits)`` represents the
      effective observable ``sum_q c_{b,q} Z_q`` per sample (this is how the
      classical loss gradient ``dL/d<Z_q>`` is chained into the circuit).
    * ``observable`` is a :class:`PauliSum` shared by all samples (VQE).

    The gradient is summed over the batch.
    """
    if (z_coefficients is None) == (observable is None):
        raise ValueError("provide exactly one of z_coefficients or observable")
    weights = np.asarray(weights, dtype=float)
    if features is not None:
        features = np.asarray(features, dtype=float)
        if features.ndim == 1:
            features = features[None, :]

    if states_final is None:
        states_final = run_parameterized(pcirc, weights, features)

    if z_coefficients is not None:
        z_coefficients = np.asarray(z_coefficients, dtype=float)
        lam = _weighted_z_apply(states_final, z_coefficients)
    else:
        lam = apply_pauli_sum(states_final, observable)

    grads = np.zeros(pcirc.num_weights)
    psi = states_final
    batch = states_final.shape[0]

    for op in reversed(pcirc.ops):
        params = pcirc.resolve_params(op, weights, features)
        matrix = _batched_matrix(op.gate, params)
        matrix_dag = _dagger(matrix)
        psi = apply_matrix(psi, matrix_dag, op.qubits)
        if op.is_trainable:
            grad_matrices = _batched_gradients(op.gate, params)
            for position, slot in enumerate(op.slots):
                if slot.kind != "weight":
                    continue
                d_states = apply_matrix(psi, grad_matrices[position], op.qubits)
                overlap = np.sum(
                    np.conj(lam.reshape(batch, -1)) * d_states.reshape(batch, -1)
                )
                grads[int(slot.value)] += 2.0 * overlap.real
        lam = apply_matrix(lam, matrix_dag, op.qubits)
    return grads


def parameter_shift_jacobian(
    expectations_fn: Callable[[np.ndarray], np.ndarray],
    pcirc: ParameterizedCircuit,
    weights: np.ndarray,
    shift: float = np.pi / 2,
    epsilon: float = 1e-3,
) -> np.ndarray:
    """Jacobian of circuit expectations with respect to every weight.

    ``expectations_fn(weights)`` must return an array of expectation values
    (any shape); the returned Jacobian has shape ``expectations.shape +
    (num_weights,)``.

    The two-term shift rule is used for weights that only feed gates in
    :data:`SHIFT_EXACT_GATES`; other weights (e.g. controlled-rotation angles)
    fall back to a symmetric finite difference, which is what one would run on
    hardware when no exact rule applies.
    """
    weights = np.asarray(weights, dtype=float)
    reference = np.asarray(expectations_fn(weights))
    jacobian = np.zeros(reference.shape + (pcirc.num_weights,))

    weight_gates: dict[int, set[str]] = {}
    for op in pcirc.ops:
        for index in op.weight_indices:
            weight_gates.setdefault(index, set()).add(op.gate)

    for index in range(pcirc.num_weights):
        gates = weight_gates.get(index, set())
        exact = bool(gates) and gates <= SHIFT_EXACT_GATES
        delta = shift if exact else epsilon
        plus = weights.copy()
        minus = weights.copy()
        plus[index] += delta
        minus[index] -= delta
        upper = np.asarray(expectations_fn(plus))
        lower = np.asarray(expectations_fn(minus))
        if exact:
            jacobian[..., index] = 0.5 * (upper - lower)
        else:
            jacobian[..., index] = (upper - lower) / (2.0 * delta)
    return jacobian


def finite_difference_gradient(
    loss_fn: Callable[[np.ndarray], float],
    weights: np.ndarray,
    epsilon: float = 1e-5,
) -> np.ndarray:
    """Central finite differences of a scalar loss (testing reference)."""
    weights = np.asarray(weights, dtype=float)
    grads = np.zeros_like(weights)
    for index in range(weights.size):
        plus = weights.copy()
        minus = weights.copy()
        plus[index] += epsilon
        minus[index] -= epsilon
        grads[index] = (loss_fn(plus) - loss_fn(minus)) / (2.0 * epsilon)
    return grads
