"""Gradient engines for parameterized circuits.

Three modes are provided, mirroring the training modes discussed in the paper:

* :func:`adjoint_gradient` — analytic reverse-mode ("backprop") gradients of
  expectation values, computed with a single forward and a single reverse
  sweep.  This is the fast classical-simulation training mode.
* :func:`parameter_shift_jacobian` — the hardware-compatible parameter-shift
  rule (exact for single-generator rotation gates), used to demonstrate
  on-device training (Table V / Fig. 16).
* :func:`finite_difference_gradient` — a reference implementation used by the
  test-suite to validate the other two.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Tuple

import numpy as np

from .circuit import ParameterizedCircuit
from .gates import gate_gradients, gate_matrix
from .operators import PauliSum
from .statevector import (
    apply_matrix,
    apply_pauli,
    apply_pauli_sum,
    run_parameterized,
)

__all__ = [
    "adjoint_gradient",
    "parameter_shift_jacobian",
    "finite_difference_gradient",
    "ShiftRulePlan",
    "build_shift_plan",
    "SHIFT_EXACT_GATES",
]

#: Gates for which the two-term parameter-shift rule is exact (their
#: parameters each enter through a single ±1/2-spectrum generator).
SHIFT_EXACT_GATES = frozenset(
    {"rx", "ry", "rz", "u1", "u2", "u3", "rxx", "ryy", "rzz", "rzx"}
)


def _weighted_z_apply(states: np.ndarray, z_coefficients: np.ndarray) -> np.ndarray:
    """Apply ``sum_q c_{b,q} Z_q`` with per-sample coefficients ``c``."""
    n_qubits = states.ndim - 1
    out = np.zeros_like(states)
    shape = (-1,) + (1,) * n_qubits
    for qubit in range(n_qubits):
        coeff = z_coefficients[:, qubit].reshape(shape)
        out = out + coeff * apply_pauli(states, qubit, "z")
    return out


def _dagger(matrix: np.ndarray) -> np.ndarray:
    if matrix.ndim == 3:
        return np.conj(np.swapaxes(matrix, 1, 2))
    return matrix.conj().T


def _batched_matrix(gate: str, params: np.ndarray) -> np.ndarray:
    if params.ndim == 2:
        return np.stack([gate_matrix(gate, row) for row in params])
    return gate_matrix(gate, params)


def _batched_gradients(gate: str, params: np.ndarray) -> list[np.ndarray]:
    """Per-parameter dU/dp, batched when params is 2-D."""
    if params.ndim == 2:
        per_sample = [gate_gradients(gate, row) for row in params]
        n_params = len(per_sample[0])
        return [np.stack([g[p] for g in per_sample]) for p in range(n_params)]
    return list(gate_gradients(gate, params))


def adjoint_gradient(
    pcirc: ParameterizedCircuit,
    weights: np.ndarray,
    features: Optional[np.ndarray] = None,
    *,
    z_coefficients: Optional[np.ndarray] = None,
    observable: Optional[PauliSum] = None,
    states_final: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Gradient of a weighted observable expectation with respect to weights.

    Exactly one of ``z_coefficients`` or ``observable`` must be given:

    * ``z_coefficients`` of shape ``(batch, n_qubits)`` represents the
      effective observable ``sum_q c_{b,q} Z_q`` per sample (this is how the
      classical loss gradient ``dL/d<Z_q>`` is chained into the circuit).
    * ``observable`` is a :class:`PauliSum` shared by all samples (VQE).

    The gradient is summed over the batch.
    """
    if (z_coefficients is None) == (observable is None):
        raise ValueError("provide exactly one of z_coefficients or observable")
    weights = np.asarray(weights, dtype=float)
    if features is not None:
        features = np.asarray(features, dtype=float)
        if features.ndim == 1:
            features = features[None, :]

    if states_final is None:
        states_final = run_parameterized(pcirc, weights, features)

    if z_coefficients is not None:
        z_coefficients = np.asarray(z_coefficients, dtype=float)
        lam = _weighted_z_apply(states_final, z_coefficients)
    else:
        lam = apply_pauli_sum(states_final, observable)

    grads = np.zeros(pcirc.num_weights)
    psi = states_final
    batch = states_final.shape[0]

    for op in reversed(pcirc.ops):
        params = pcirc.resolve_params(op, weights, features)
        matrix = _batched_matrix(op.gate, params)
        matrix_dag = _dagger(matrix)
        psi = apply_matrix(psi, matrix_dag, op.qubits)
        if op.is_trainable:
            grad_matrices = _batched_gradients(op.gate, params)
            for position, slot in enumerate(op.slots):
                if slot.kind != "weight":
                    continue
                d_states = apply_matrix(psi, grad_matrices[position], op.qubits)
                overlap = np.sum(
                    np.conj(lam.reshape(batch, -1)) * d_states.reshape(batch, -1)
                )
                grads[int(slot.value)] += 2.0 * overlap.real
        lam = apply_matrix(lam, matrix_dag, op.qubits)
    return grads


@dataclass(frozen=True)
class ShiftRulePlan:
    """The per-weight shift rule of one circuit structure.

    Classifies every trainable weight once — the two-term shift rule for
    weights that only feed gates in :data:`SHIFT_EXACT_GATES`, a symmetric
    finite difference for the rest — and turns that classification into the
    matrix of shifted weight vectors every gradient engine evaluates.  Built
    by :func:`build_shift_plan`; shared between the sequential
    :func:`parameter_shift_jacobian` and the batched engines in
    :mod:`repro.gradients`, so "which circuits does one gradient take"
    has exactly one definition.

    Evaluation-row convention: for weight index ``i``, row ``2*i`` is the
    plus shift and row ``2*i + 1`` the minus shift — ``2 * num_weights``
    rows total, the unshifted center row is *not* included.
    """

    num_weights: int
    #: per-weight flag: exact two-term rule (True) or finite difference
    exact: Tuple[bool, ...]
    #: per-weight shift magnitude (``shift`` when exact, ``epsilon`` otherwise)
    deltas: Tuple[float, ...]

    @property
    def n_shifted(self) -> int:
        """Number of shifted evaluation rows (``2 * num_weights``)."""
        return 2 * self.num_weights

    def shifted_weight_rows(self, weights: np.ndarray) -> np.ndarray:
        """The ``(2 * num_weights, num_weights)`` matrix of shifted vectors.

        Row ``2*i`` / ``2*i + 1`` apply the same ``+=`` / ``-=`` updates the
        sequential rule performs, so a batched engine evaluating these rows
        sees bit-identical weight vectors.
        """
        weights = np.asarray(weights, dtype=float).ravel()
        if weights.shape[0] != self.num_weights:
            raise ValueError(
                f"expected {self.num_weights} weights (got {weights.shape[0]})"
            )
        rows = np.repeat(weights[None, :], self.n_shifted, axis=0)
        for index in range(self.num_weights):
            rows[2 * index, index] += self.deltas[index]
            rows[2 * index + 1, index] -= self.deltas[index]
        return rows

    def jacobian_from_shifted(self, shifted: np.ndarray) -> np.ndarray:
        """Combine shifted evaluations into the Jacobian.

        ``shifted`` has shape ``(2 * num_weights,) + expectations.shape`` in
        the row convention above; the result has shape
        ``expectations.shape + (num_weights,)``.  The per-index arithmetic is
        the exact sequence of float operations the sequential rule performs.
        """
        shifted = np.asarray(shifted)
        if shifted.shape[0] != self.n_shifted:
            raise ValueError(
                f"expected {self.n_shifted} shifted evaluations "
                f"(got {shifted.shape[0]})"
            )
        jacobian = np.zeros(shifted.shape[1:] + (self.num_weights,))
        for index in range(self.num_weights):
            upper = shifted[2 * index]
            lower = shifted[2 * index + 1]
            if self.exact[index]:
                jacobian[..., index] = 0.5 * (upper - lower)
            else:
                jacobian[..., index] = (upper - lower) / (2.0 * self.deltas[index])
        return jacobian


def build_shift_plan(
    pcirc: ParameterizedCircuit,
    shift: float = np.pi / 2,
    epsilon: float = 1e-3,
) -> ShiftRulePlan:
    """Classify every weight of ``pcirc`` for the parameter-shift rule.

    A weight is *exact* when every gate it feeds is in
    :data:`SHIFT_EXACT_GATES`; other weights (e.g. controlled-rotation
    angles) fall back to a symmetric finite difference, which is what one
    would run on hardware when no exact rule applies.
    """
    weight_gates: dict[int, set[str]] = {}
    for op in pcirc.ops:
        for index in op.weight_indices:
            weight_gates.setdefault(index, set()).add(op.gate)
    exact = []
    deltas = []
    for index in range(pcirc.num_weights):
        gates = weight_gates.get(index, set())
        is_exact = bool(gates) and gates <= SHIFT_EXACT_GATES
        exact.append(is_exact)
        deltas.append(shift if is_exact else epsilon)
    return ShiftRulePlan(
        num_weights=pcirc.num_weights,
        exact=tuple(exact),
        deltas=tuple(deltas),
    )


def parameter_shift_jacobian(
    expectations_fn: Callable[[np.ndarray], np.ndarray],
    pcirc: ParameterizedCircuit,
    weights: np.ndarray,
    shift: float = np.pi / 2,
    epsilon: float = 1e-3,
) -> np.ndarray:
    """Jacobian of circuit expectations with respect to every weight.

    ``expectations_fn(weights)`` must return an array of expectation values
    (any shape); the returned Jacobian has shape ``expectations.shape +
    (num_weights,)``.

    The shifted weight vectors and the per-weight rule (exact two-term shift
    vs symmetric finite difference) come from :func:`build_shift_plan`, the
    single source of truth shared with the batched engines in
    :mod:`repro.gradients`; this function evaluates the rows one
    ``expectations_fn`` call at a time.
    """
    plan = build_shift_plan(pcirc, shift=shift, epsilon=epsilon)
    weights = np.asarray(weights, dtype=float)
    reference = np.asarray(expectations_fn(weights))
    rows = plan.shifted_weight_rows(weights)
    if rows.shape[0] == 0:
        return np.zeros(reference.shape + (0,))
    shifted = np.stack([np.asarray(expectations_fn(row)) for row in rows])
    return plan.jacobian_from_shifted(shifted)


def finite_difference_gradient(
    loss_fn: Callable[[np.ndarray], float],
    weights: np.ndarray,
    epsilon: float = 1e-5,
) -> np.ndarray:
    """Central finite differences of a scalar loss (testing reference)."""
    weights = np.asarray(weights, dtype=float)
    grads = np.zeros_like(weights)
    for index in range(weights.size):
        plus = weights.copy()
        minus = weights.copy()
        plus[index] += epsilon
        minus[index] -= epsilon
        grads[index] = (loss_fn(plus) - loss_fn(minus)) / (2.0 * epsilon)
    return grads
