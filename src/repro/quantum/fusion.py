"""Static execution mode: greedy gate fusion (TorchQuantum "static mode").

Consecutive instructions whose combined support fits in ``max_fused_qubits``
are fused into a single unitary, so the simulator applies fewer, larger
contractions.  This reproduces the >2x static-mode speedup the paper reports
for TorchQuantum in Fig. 12.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from .circuit import Instruction, QuantumCircuit
from .statevector import apply_matrix, circuit_unitary, zero_state

__all__ = ["FusedInstruction", "FusedCircuit", "fuse_circuit"]


@dataclass(frozen=True)
class FusedInstruction:
    """A dense unitary acting on an ordered tuple of qubits."""

    qubits: Tuple[int, ...]
    matrix: np.ndarray


def _fuse_group(group: Sequence[Instruction], qubits: Tuple[int, ...]) -> np.ndarray:
    """Compute the joint unitary of a group of instructions on ``qubits``."""
    local_index = {q: i for i, q in enumerate(qubits)}
    mini = QuantumCircuit(len(qubits))
    for instruction in group:
        mini.add(
            instruction.gate,
            tuple(local_index[q] for q in instruction.qubits),
            instruction.params,
        )
    return circuit_unitary(mini)


def fuse_circuit(
    circuit: QuantumCircuit, max_fused_qubits: int = 3
) -> List[FusedInstruction]:
    """Greedily group consecutive instructions into ≤ ``max_fused_qubits`` blocks."""
    if max_fused_qubits < 1:
        raise ValueError("max_fused_qubits must be positive")
    fused: List[FusedInstruction] = []
    group: List[Instruction] = []
    support: Tuple[int, ...] = ()

    def flush() -> None:
        nonlocal group, support
        if group:
            fused.append(FusedInstruction(support, _fuse_group(group, support)))
            group, support = [], ()

    for instruction in circuit.instructions:
        candidate = tuple(sorted(set(support) | set(instruction.qubits)))
        if len(candidate) <= max_fused_qubits:
            group.append(instruction)
            support = candidate
        else:
            flush()
            group = [instruction]
            support = tuple(sorted(instruction.qubits))
    flush()
    return fused


class FusedCircuit:
    """A fused (static-mode) representation of a concrete circuit."""

    def __init__(self, n_qubits: int, fused: Sequence[FusedInstruction]) -> None:
        self.n_qubits = n_qubits
        self.fused = list(fused)

    @classmethod
    def from_circuit(
        cls, circuit: QuantumCircuit, max_fused_qubits: int = 3
    ) -> "FusedCircuit":
        return cls(circuit.n_qubits, fuse_circuit(circuit, max_fused_qubits))

    def __len__(self) -> int:
        return len(self.fused)

    def run(self, states: np.ndarray | None = None, batch: int = 1) -> np.ndarray:
        """Evolve a batched state through the fused instruction list."""
        if states is None:
            states = zero_state(self.n_qubits, batch)
        for block in self.fused:
            states = apply_matrix(states, block.matrix, block.qubits)
        return states
