"""Density-matrix simulation with noise channels.

This is the backend used by the performance estimator's "simulator with a
noise model from real devices" mode and by the shot-based device backend.
Density matrices are stored as tensors of shape ``(2,) * n + (2,) * n`` so
that gates and Kraus operators are applied locally without building full
``2**n x 2**n`` unitaries.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from .circuit import QuantumCircuit
from .operators import PauliSum

__all__ = [
    "zero_density_matrix",
    "apply_unitary",
    "apply_kraus",
    "density_probabilities",
    "expectation_pauli_sum_dm",
    "expectation_z_all_dm",
    "purity",
    "DensityMatrixSimulator",
]


def zero_density_matrix(n_qubits: int) -> np.ndarray:
    """``|0..0><0..0|`` as a rank-2n tensor."""
    rho = np.zeros((2,) * (2 * n_qubits), dtype=complex)
    rho[(0,) * (2 * n_qubits)] = 1.0
    return rho


def _apply_left(rho: np.ndarray, matrix: np.ndarray, qubits: Sequence[int], n: int):
    """Apply ``matrix`` to the row (ket) indices of ``rho``."""
    k = len(qubits)
    reshaped = matrix.reshape((2,) * (2 * k))
    axes = list(qubits)
    out = np.tensordot(reshaped, rho, axes=(list(range(k, 2 * k)), axes))
    return np.moveaxis(out, list(range(k)), axes)


def _apply_right(rho: np.ndarray, matrix: np.ndarray, qubits: Sequence[int], n: int):
    """Apply ``matrix``'s conjugate transpose to the column (bra) indices."""
    k = len(qubits)
    conj = matrix.conj().reshape((2,) * (2 * k))
    axes = [n + q for q in qubits]
    out = np.tensordot(conj, rho, axes=(list(range(k, 2 * k)), axes))
    return np.moveaxis(out, list(range(k)), axes)


def apply_unitary(rho: np.ndarray, matrix: np.ndarray, qubits: Sequence[int]):
    """``U rho U†`` applied on ``qubits``."""
    n = rho.ndim // 2
    return _apply_right(_apply_left(rho, matrix, qubits, n), matrix, qubits, n)


def kraus_to_superoperator(kraus_operators: Sequence[np.ndarray]) -> np.ndarray:
    """Superoperator ``S[(a,b),(a',b')] = sum_i K_i[a,a'] conj(K_i)[b,b']``."""
    dim = kraus_operators[0].shape[0]
    superop = np.zeros((dim, dim, dim, dim), dtype=complex)
    for kraus in kraus_operators:
        superop += np.einsum("ac,bd->abcd", kraus, kraus.conj())
    return superop


def apply_kraus(
    rho: np.ndarray, kraus_operators: Sequence[np.ndarray], qubits: Sequence[int]
) -> np.ndarray:
    """``sum_i K_i rho K_i†`` applied on ``qubits``.

    Channels with many Kraus operators (e.g. two-qubit depolarizing) are
    applied through their precomputed superoperator, which contracts the
    density matrix once instead of once per Kraus term.
    """
    n = rho.ndim // 2
    if len(kraus_operators) <= 2:
        out = np.zeros_like(rho)
        for kraus in kraus_operators:
            out = out + _apply_right(
                _apply_left(rho, kraus, qubits, n), kraus, qubits, n
            )
        return out
    k = len(qubits)
    superop = kraus_to_superoperator(kraus_operators)
    reshaped = superop.reshape((2,) * (4 * k))
    axes = [q for q in qubits] + [n + q for q in qubits]
    moved = np.tensordot(reshaped, rho, axes=(list(range(2 * k, 4 * k)), axes))
    return np.moveaxis(moved, list(range(2 * k)), axes)


def density_probabilities(rho: np.ndarray) -> np.ndarray:
    """Computational-basis probabilities (the diagonal of rho)."""
    n = rho.ndim // 2
    dim = 2**n
    matrix = rho.reshape(dim, dim)
    probs = np.real(np.diag(matrix)).copy()
    probs = np.clip(probs, 0.0, None)
    total = probs.sum()
    if total > 0:
        probs /= total
    return probs


def expectation_z_all_dm(rho: np.ndarray) -> np.ndarray:
    """Z expectation on every qubit computed from the diagonal of rho."""
    n = rho.ndim // 2
    probs = density_probabilities(rho).reshape((2,) * n)
    out = np.zeros(n)
    for qubit in range(n):
        axes = tuple(a for a in range(n) if a != qubit)
        marginal = probs.sum(axis=axes)
        out[qubit] = marginal[0] - marginal[1]
    return out


def expectation_pauli_sum_dm(rho: np.ndarray, observable: PauliSum) -> float:
    """``Tr(H rho)`` for a Pauli-sum observable."""
    from .gates import gate_matrix

    n = rho.ndim // 2
    total = 0.0
    for term in observable.terms:
        if term.is_identity:
            total += term.coefficient
            continue
        transformed = rho
        for qubit, pauli in term.paulis:
            transformed = _apply_left(
                transformed, gate_matrix(pauli.lower()), (qubit,), n
            )
        dim = 2**n
        total += term.coefficient * float(
            np.real(np.trace(transformed.reshape(dim, dim)))
        )
    return total


def purity(rho: np.ndarray) -> float:
    """``Tr(rho^2)`` — 1 for pure states, < 1 for mixed states."""
    n = rho.ndim // 2
    dim = 2**n
    matrix = rho.reshape(dim, dim)
    return float(np.real(np.trace(matrix @ matrix)))


class DensityMatrixSimulator:
    """Runs concrete circuits with an optional noise model.

    The noise model (see :mod:`repro.noise.models`) supplies Kraus channels to
    insert after each instruction plus per-qubit readout confusion matrices.
    """

    def __init__(self, n_qubits: int, noise_model=None) -> None:
        self.n_qubits = int(n_qubits)
        self.noise_model = noise_model

    def run(
        self, circuit: QuantumCircuit, initial: Optional[np.ndarray] = None
    ) -> np.ndarray:
        if circuit.n_qubits != self.n_qubits:
            raise ValueError("circuit size does not match simulator size")
        rho = zero_density_matrix(self.n_qubits) if initial is None else initial.copy()
        for instruction in circuit.instructions:
            rho = apply_unitary(rho, instruction.matrix(), instruction.qubits)
            if self.noise_model is not None:
                for kraus_ops, qubits in self.noise_model.channels_for(instruction):
                    rho = apply_kraus(rho, kraus_ops, qubits)
        return rho

    def probabilities(
        self, circuit: QuantumCircuit, with_readout_error: bool = True
    ) -> np.ndarray:
        """Final measurement probabilities, including readout confusion."""
        rho = self.run(circuit)
        probs = density_probabilities(rho)
        if with_readout_error and self.noise_model is not None:
            probs = self.noise_model.apply_readout_error(probs, self.n_qubits)
        return probs

    def expectation_z_all(
        self, circuit: QuantumCircuit, with_readout_error: bool = True
    ) -> np.ndarray:
        """Per-qubit Z expectations of the noisy output distribution."""
        probs = self.probabilities(circuit, with_readout_error).reshape(
            (2,) * self.n_qubits
        )
        out = np.zeros(self.n_qubits)
        for qubit in range(self.n_qubits):
            axes = tuple(a for a in range(self.n_qubits) if a != qubit)
            marginal = probs.sum(axis=axes)
            out[qubit] = marginal[0] - marginal[1]
        return out
