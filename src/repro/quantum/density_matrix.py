"""Density-matrix simulation with noise channels.

This is the backend used by the performance estimator's "simulator with a
noise model from real devices" mode and by the shot-based device backend.
Density matrices are stored as tensors of shape ``(2,) * n + (2,) * n`` so
that gates and Kraus operators are applied locally without building full
``2**n x 2**n`` unitaries.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Optional, Sequence, Tuple

import numpy as np

from .circuit import QuantumCircuit
from .operators import PauliSum

__all__ = [
    "zero_density_matrix",
    "zero_density_matrices",
    "apply_unitary",
    "apply_unitary_batch",
    "apply_kraus",
    "apply_kraus_batch",
    "density_probabilities",
    "density_probabilities_batch",
    "expectation_pauli_sum_dm",
    "expectation_z_all_dm",
    "purity",
    "DensityMatrixSimulator",
]


def zero_density_matrix(n_qubits: int) -> np.ndarray:
    """``|0..0><0..0|`` as a rank-2n tensor."""
    rho = np.zeros((2,) * (2 * n_qubits), dtype=complex)
    rho[(0,) * (2 * n_qubits)] = 1.0
    return rho


def _apply_left(rho: np.ndarray, matrix: np.ndarray, qubits: Sequence[int], n: int):
    """Apply ``matrix`` to the row (ket) indices of ``rho``."""
    k = len(qubits)
    reshaped = matrix.reshape((2,) * (2 * k))
    axes = list(qubits)
    out = np.tensordot(reshaped, rho, axes=(list(range(k, 2 * k)), axes))
    return np.moveaxis(out, list(range(k)), axes)


def _apply_right(rho: np.ndarray, matrix: np.ndarray, qubits: Sequence[int], n: int):
    """Apply ``matrix``'s conjugate transpose to the column (bra) indices."""
    k = len(qubits)
    conj = matrix.conj().reshape((2,) * (2 * k))
    axes = [n + q for q in qubits]
    out = np.tensordot(conj, rho, axes=(list(range(k, 2 * k)), axes))
    return np.moveaxis(out, list(range(k)), axes)


def apply_unitary(rho: np.ndarray, matrix: np.ndarray, qubits: Sequence[int]):
    """``U rho U†`` applied on ``qubits``."""
    n = rho.ndim // 2
    return _apply_right(_apply_left(rho, matrix, qubits, n), matrix, qubits, n)


def kraus_to_superoperator(kraus_operators: Sequence[np.ndarray]) -> np.ndarray:
    """Superoperator ``S[(a,b),(a',b')] = sum_i K_i[a,a'] conj(K_i)[b,b']``."""
    dim = kraus_operators[0].shape[0]
    superop = np.zeros((dim, dim, dim, dim), dtype=complex)
    for kraus in kraus_operators:
        superop += np.einsum("ac,bd->abcd", kraus, kraus.conj())
    return superop


#: superoperators memoized by Kraus-tuple identity.  The channel constructors
#: in repro.noise.channels are themselves memoized, so the identical tuple
#: object arrives once per gate position of every circuit — rebuilding the
#: superoperator each time dominated the batched noise_sim hot loop.  Entries
#: keep a strong reference to the operators so CPython cannot recycle the id.
_SUPEROP_CACHE: dict = {}


def _cached_superoperator(kraus_operators: Sequence[np.ndarray]) -> np.ndarray:
    key = id(kraus_operators)
    entry = _SUPEROP_CACHE.get(key)
    if entry is None or entry[0] is not kraus_operators:
        if len(_SUPEROP_CACHE) >= 1024:
            _SUPEROP_CACHE.clear()
        superop = kraus_to_superoperator(kraus_operators)
        superop.flags.writeable = False
        _SUPEROP_CACHE[key] = (kraus_operators, superop)
        return superop
    return entry[1]


def apply_kraus(
    rho: np.ndarray, kraus_operators: Sequence[np.ndarray], qubits: Sequence[int]
) -> np.ndarray:
    """``sum_i K_i rho K_i†`` applied on ``qubits``.

    Channels with many Kraus operators (e.g. two-qubit depolarizing) are
    applied through their precomputed superoperator, which contracts the
    density matrix once instead of once per Kraus term.
    """
    n = rho.ndim // 2
    if len(kraus_operators) <= 2:
        out = np.zeros_like(rho)
        for kraus in kraus_operators:
            out = out + _apply_right(
                _apply_left(rho, kraus, qubits, n), kraus, qubits, n
            )
        return out
    k = len(qubits)
    superop = _cached_superoperator(kraus_operators)
    reshaped = superop.reshape((2,) * (4 * k))
    axes = [q for q in qubits] + [n + q for q in qubits]
    moved = np.tensordot(reshaped, rho, axes=(list(range(2 * k, 4 * k)), axes))
    return np.moveaxis(moved, list(range(2 * k)), axes)


# ---------------------------------------------------------------------------
# Batched density matrices
#
# Batched density matrices are stored as tensors of shape
# ``(batch,) + (2,) * 2n`` so a stack of noisy circuits that share their gate
# *structure* (same gate names and qubits at every position, possibly with
# per-sample parameters) evolves through one sequence of contractions.  This
# is the density-matrix analogue of the batched statevector layout and is the
# hot loop of the population execution engine's ``noise_sim`` mode.
# ---------------------------------------------------------------------------


def zero_density_matrices(n_qubits: int, batch: int = 1) -> np.ndarray:
    """``|0..0><0..0|`` replicated ``batch`` times, shape ``(batch,) + (2,)*2n``."""
    rhos = np.zeros((batch,) + (2,) * (2 * n_qubits), dtype=complex)
    rhos[(slice(None),) + (0,) * (2 * n_qubits)] = 1.0
    return rhos


@lru_cache(maxsize=4096)
def _front_permutation(
    ndim: int, axes: Tuple[int, ...]
) -> Tuple[Tuple[int, ...], Tuple[int, ...]]:
    """Permutation bringing ``axes`` to the front, and its inverse.

    Cached per ``(ndim, axes)``: the batched hot loop applies the same
    handful of gate/channel positions thousands of times, and recomputing
    the axis bookkeeping (as ``tensordot``/``moveaxis`` do per call)
    dominated the contraction cost on small registers.
    """
    perm = tuple(axes) + tuple(a for a in range(ndim) if a not in axes)
    inverse = tuple(int(i) for i in np.argsort(perm))
    return perm, inverse


def _apply_front_matrix(
    tensor: np.ndarray, operator: np.ndarray, axes: Tuple[int, ...]
) -> np.ndarray:
    """Contract a ``(D, D)`` operator against ``axes`` of a tensor via BLAS."""
    perm, inverse = _front_permutation(tensor.ndim, axes)
    moved = tensor.transpose(perm)
    flat = moved.reshape(operator.shape[0], -1)
    out = operator @ flat
    return out.reshape(moved.shape).transpose(inverse)


def _apply_side_batch(
    rhos: np.ndarray, matrix: np.ndarray, qubits: Sequence[int], side: str
) -> np.ndarray:
    """Apply ``matrix`` to the ket (``side="left"``) or bra axes of a batch.

    ``matrix`` is either ``(2**k, 2**k)`` (shared across the batch) or
    ``(batch, 2**k, 2**k)`` (per-sample parameters).
    """
    n = (rhos.ndim - 1) // 2
    k = len(qubits)
    dim = 2**k
    if side == "left":
        axes = tuple(1 + q for q in qubits)
    else:
        matrix = matrix.conj()
        axes = tuple(1 + n + q for q in qubits)

    if matrix.ndim == 2:
        return _apply_front_matrix(rhos, matrix, axes)

    if matrix.ndim != 3:
        raise ValueError("matrix must have 2 or 3 dimensions")
    batch = rhos.shape[0]
    if matrix.shape[0] != batch:
        raise ValueError("batched matrix leading dimension must equal the batch size")
    moved = np.moveaxis(rhos, axes, list(range(1, 1 + k)))
    tail_shape = moved.shape[1 + k:]
    flat = moved.reshape(batch, dim, -1)
    out = np.einsum("bij,bjr->bir", matrix, flat)
    out = out.reshape((batch,) + (2,) * k + tail_shape)
    return np.moveaxis(out, list(range(1, 1 + k)), axes)


def apply_unitary_batch(
    rhos: np.ndarray, matrix: np.ndarray, qubits: Sequence[int]
) -> np.ndarray:
    """``U rho U†`` on every density matrix of a batch.

    ``matrix`` may be shared (2-D) or per-sample (3-D); the latter carries the
    per-sample gate parameters of structurally aligned circuits.
    """
    return _apply_side_batch(
        _apply_side_batch(rhos, matrix, qubits, "left"), matrix, qubits, "right"
    )


def apply_kraus_batch(
    rhos: np.ndarray, kraus_operators: Sequence[np.ndarray], qubits: Sequence[int]
) -> np.ndarray:
    """``sum_i K_i rho K_i†`` on every density matrix of a batch.

    The Kraus operators are shared across the batch (noise channels depend on
    the gate's qubits, never on its parameters).  Like :func:`apply_kraus`,
    channels with many operators go through the precomputed superoperator.
    """
    n = (rhos.ndim - 1) // 2
    if len(kraus_operators) <= 2:
        out = np.zeros_like(rhos)
        for kraus in kraus_operators:
            out = out + _apply_side_batch(
                _apply_side_batch(rhos, kraus, qubits, "left"), kraus, qubits, "right"
            )
        return out
    k = len(qubits)
    dim = 2**k
    superop = _cached_superoperator(kraus_operators)
    axes = tuple(1 + q for q in qubits) + tuple(1 + n + q for q in qubits)
    return _apply_front_matrix(rhos, superop.reshape(dim * dim, dim * dim), axes)


def density_probabilities_batch(rhos: np.ndarray) -> np.ndarray:
    """Per-sample computational-basis probabilities, shape ``(batch, 2**n)``.

    Matches :func:`density_probabilities` applied to every batch entry
    (diagonal, clipped to be non-negative, renormalized).
    """
    batch = rhos.shape[0]
    n = (rhos.ndim - 1) // 2
    dim = 2**n
    matrices = rhos.reshape(batch, dim, dim)
    probs = np.real(np.einsum("bii->bi", matrices)).copy()
    probs = np.clip(probs, 0.0, None)
    totals = probs.sum(axis=1, keepdims=True)
    safe = np.where(totals > 0, totals, 1.0)
    return probs / safe


def density_probabilities(rho: np.ndarray) -> np.ndarray:
    """Computational-basis probabilities (the diagonal of rho)."""
    n = rho.ndim // 2
    dim = 2**n
    matrix = rho.reshape(dim, dim)
    probs = np.real(np.diag(matrix)).copy()
    probs = np.clip(probs, 0.0, None)
    total = probs.sum()
    if total > 0:
        probs /= total
    return probs


def expectation_z_all_dm(rho: np.ndarray) -> np.ndarray:
    """Z expectation on every qubit computed from the diagonal of rho."""
    n = rho.ndim // 2
    probs = density_probabilities(rho).reshape((2,) * n)
    out = np.zeros(n)
    for qubit in range(n):
        axes = tuple(a for a in range(n) if a != qubit)
        marginal = probs.sum(axis=axes)
        out[qubit] = marginal[0] - marginal[1]
    return out


def expectation_pauli_sum_dm(rho: np.ndarray, observable: PauliSum) -> float:
    """``Tr(H rho)`` for a Pauli-sum observable."""
    from .gates import gate_matrix

    n = rho.ndim // 2
    total = 0.0
    for term in observable.terms:
        if term.is_identity:
            total += term.coefficient
            continue
        transformed = rho
        for qubit, pauli in term.paulis:
            transformed = _apply_left(
                transformed, gate_matrix(pauli.lower()), (qubit,), n
            )
        dim = 2**n
        total += term.coefficient * float(
            np.real(np.trace(transformed.reshape(dim, dim)))
        )
    return total


def purity(rho: np.ndarray) -> float:
    """``Tr(rho^2)`` — 1 for pure states, < 1 for mixed states."""
    n = rho.ndim // 2
    dim = 2**n
    matrix = rho.reshape(dim, dim)
    return float(np.real(np.trace(matrix @ matrix)))


class DensityMatrixSimulator:
    """Runs concrete circuits with an optional noise model.

    The noise model (see :mod:`repro.noise.models`) supplies Kraus channels to
    insert after each instruction plus per-qubit readout confusion matrices.
    """

    def __init__(self, n_qubits: int, noise_model=None) -> None:
        self.n_qubits = int(n_qubits)
        self.noise_model = noise_model

    def run(
        self, circuit: QuantumCircuit, initial: Optional[np.ndarray] = None
    ) -> np.ndarray:
        if circuit.n_qubits != self.n_qubits:
            raise ValueError("circuit size does not match simulator size")
        rho = zero_density_matrix(self.n_qubits) if initial is None else initial.copy()
        for instruction in circuit.instructions:
            rho = apply_unitary(rho, instruction.matrix(), instruction.qubits)
            if self.noise_model is not None:
                for kraus_ops, qubits in self.noise_model.channels_for(instruction):
                    rho = apply_kraus(rho, kraus_ops, qubits)
        return rho

    def probabilities(
        self, circuit: QuantumCircuit, with_readout_error: bool = True
    ) -> np.ndarray:
        """Final measurement probabilities, including readout confusion."""
        rho = self.run(circuit)
        probs = density_probabilities(rho)
        if with_readout_error and self.noise_model is not None:
            probs = self.noise_model.apply_readout_error(probs, self.n_qubits)
        return probs

    def expectation_z_all(
        self, circuit: QuantumCircuit, with_readout_error: bool = True
    ) -> np.ndarray:
        """Per-qubit Z expectations of the noisy output distribution."""
        probs = self.probabilities(circuit, with_readout_error).reshape(
            (2,) * self.n_qubits
        )
        out = np.zeros(self.n_qubits)
        for qubit in range(self.n_qubits):
            axes = tuple(a for a in range(self.n_qubits) if a != qubit)
            marginal = probs.sum(axis=axes)
            out[qubit] = marginal[0] - marginal[1]
        return out
