"""Gate library: unitary matrices and analytic parameter derivatives.

Every gate used by the six QuantumNAS design spaces (Section IV of the paper)
is defined here, along with the derivative of its matrix with respect to each
of its parameters.  The derivatives feed the adjoint-mode differentiation in
:mod:`repro.quantum.autodiff` (the "backprop" training mode of TorchQuantum).

Conventions
-----------
* Qubit 0 is the most-significant wire of a multi-qubit gate matrix, matching
  the ordering used by :mod:`repro.quantum.statevector`.
* Rotation gates follow the standard convention ``R_P(theta) =
  exp(-i * theta / 2 * P)``.
* Controlled gates place the control on the first qubit of the instruction.
"""

from __future__ import annotations

import cmath
import math
from dataclasses import dataclass
from typing import Callable, Dict, Sequence, Tuple

import numpy as np

__all__ = [
    "GateSpec",
    "GATES",
    "gate_matrix",
    "gate_gradients",
    "gate_num_params",
    "gate_num_qubits",
    "is_parameterized",
    "controlled",
    "PAULI_I",
    "PAULI_X",
    "PAULI_Y",
    "PAULI_Z",
]

# ---------------------------------------------------------------------------
# Elementary matrices
# ---------------------------------------------------------------------------

PAULI_I = np.eye(2, dtype=complex)
PAULI_X = np.array([[0, 1], [1, 0]], dtype=complex)
PAULI_Y = np.array([[0, -1j], [1j, 0]], dtype=complex)
PAULI_Z = np.array([[1, 0], [0, -1]], dtype=complex)

_H = np.array([[1, 1], [1, -1]], dtype=complex) / math.sqrt(2)
_S = np.diag([1, 1j]).astype(complex)
_SDG = np.diag([1, -1j]).astype(complex)
_T = np.diag([1, cmath.exp(1j * math.pi / 4)]).astype(complex)
_TDG = np.diag([1, cmath.exp(-1j * math.pi / 4)]).astype(complex)
_SX = 0.5 * np.array([[1 + 1j, 1 - 1j], [1 - 1j, 1 + 1j]], dtype=complex)
_SXDG = _SX.conj().T


def _matrix_sqrt(unitary: np.ndarray) -> np.ndarray:
    """Principal square root of a unitary matrix via eigendecomposition."""
    eigvals, eigvecs = np.linalg.eig(unitary)
    return eigvecs @ np.diag(np.sqrt(eigvals.astype(complex))) @ np.linalg.inv(eigvecs)


_SH = _matrix_sqrt(_H)  # the sqrt(H) layer used by the RXYZ design space

_CX = np.array(
    [[1, 0, 0, 0], [0, 1, 0, 0], [0, 0, 0, 1], [0, 0, 1, 0]], dtype=complex
)
_CZ = np.diag([1, 1, 1, -1]).astype(complex)
_CY = np.array(
    [[1, 0, 0, 0], [0, 1, 0, 0], [0, 0, 0, -1j], [0, 0, 1j, 0]], dtype=complex
)
_SWAP = np.array(
    [[1, 0, 0, 0], [0, 0, 1, 0], [0, 1, 0, 0], [0, 0, 0, 1]], dtype=complex
)
_SQSWAP = np.array(
    [
        [1, 0, 0, 0],
        [0, 0.5 + 0.5j, 0.5 - 0.5j, 0],
        [0, 0.5 - 0.5j, 0.5 + 0.5j, 0],
        [0, 0, 0, 1],
    ],
    dtype=complex,
)
_ISWAP = np.array(
    [[1, 0, 0, 0], [0, 0, 1j, 0], [0, 1j, 0, 0], [0, 0, 0, 1]], dtype=complex
)


def controlled(unitary: np.ndarray) -> np.ndarray:
    """Return the controlled version of a single/multi-qubit unitary.

    The control is prepended as the most-significant qubit.
    """
    dim = unitary.shape[0]
    out = np.eye(2 * dim, dtype=complex)
    out[dim:, dim:] = unitary
    return out


# ---------------------------------------------------------------------------
# Parameterized gate constructors (matrix + per-parameter derivative)
# ---------------------------------------------------------------------------


def _rot_pair(pauli: np.ndarray) -> Tuple[Callable, Callable]:
    """Matrix and gradient functions for ``exp(-i theta/2 * P)``."""
    eye = np.eye(pauli.shape[0], dtype=complex)

    def matrix(params: Sequence[float]) -> np.ndarray:
        theta = params[0]
        return math.cos(theta / 2) * eye - 1j * math.sin(theta / 2) * pauli

    def grads(params: Sequence[float]) -> Tuple[np.ndarray, ...]:
        theta = params[0]
        return (
            -0.5 * math.sin(theta / 2) * eye - 0.5j * math.cos(theta / 2) * pauli,
        )

    return matrix, grads


_rx_matrix, _rx_grads = _rot_pair(PAULI_X)
_ry_matrix, _ry_grads = _rot_pair(PAULI_Y)
_rz_matrix, _rz_grads = _rot_pair(PAULI_Z)
_rxx_matrix, _rxx_grads = _rot_pair(np.kron(PAULI_X, PAULI_X))
_ryy_matrix, _ryy_grads = _rot_pair(np.kron(PAULI_Y, PAULI_Y))
_rzz_matrix, _rzz_grads = _rot_pair(np.kron(PAULI_Z, PAULI_Z))
_rzx_matrix, _rzx_grads = _rot_pair(np.kron(PAULI_Z, PAULI_X))


def _u1_matrix(params: Sequence[float]) -> np.ndarray:
    lam = params[0]
    return np.diag([1.0, cmath.exp(1j * lam)]).astype(complex)


def _u1_grads(params: Sequence[float]) -> Tuple[np.ndarray, ...]:
    lam = params[0]
    return (np.diag([0.0, 1j * cmath.exp(1j * lam)]).astype(complex),)


def _u2_matrix(params: Sequence[float]) -> np.ndarray:
    phi, lam = params
    inv_sqrt2 = 1.0 / math.sqrt(2)
    return inv_sqrt2 * np.array(
        [
            [1.0, -cmath.exp(1j * lam)],
            [cmath.exp(1j * phi), cmath.exp(1j * (phi + lam))],
        ],
        dtype=complex,
    )


def _u2_grads(params: Sequence[float]) -> Tuple[np.ndarray, ...]:
    phi, lam = params
    inv_sqrt2 = 1.0 / math.sqrt(2)
    d_phi = inv_sqrt2 * np.array(
        [
            [0.0, 0.0],
            [1j * cmath.exp(1j * phi), 1j * cmath.exp(1j * (phi + lam))],
        ],
        dtype=complex,
    )
    d_lam = inv_sqrt2 * np.array(
        [
            [0.0, -1j * cmath.exp(1j * lam)],
            [0.0, 1j * cmath.exp(1j * (phi + lam))],
        ],
        dtype=complex,
    )
    return (d_phi, d_lam)


def _u3_matrix(params: Sequence[float]) -> np.ndarray:
    theta, phi, lam = params
    cos = math.cos(theta / 2)
    sin = math.sin(theta / 2)
    return np.array(
        [
            [cos, -cmath.exp(1j * lam) * sin],
            [cmath.exp(1j * phi) * sin, cmath.exp(1j * (phi + lam)) * cos],
        ],
        dtype=complex,
    )


def _u3_grads(params: Sequence[float]) -> Tuple[np.ndarray, ...]:
    theta, phi, lam = params
    cos = math.cos(theta / 2)
    sin = math.sin(theta / 2)
    e_lam = cmath.exp(1j * lam)
    e_phi = cmath.exp(1j * phi)
    e_pl = cmath.exp(1j * (phi + lam))
    d_theta = 0.5 * np.array(
        [[-sin, -e_lam * cos], [e_phi * cos, -e_pl * sin]], dtype=complex
    )
    d_phi = np.array(
        [[0.0, 0.0], [1j * e_phi * sin, 1j * e_pl * cos]], dtype=complex
    )
    d_lam = np.array(
        [[0.0, -1j * e_lam * sin], [0.0, 1j * e_pl * cos]], dtype=complex
    )
    return (d_theta, d_phi, d_lam)


def _controlled_param(
    matrix_fn: Callable[[Sequence[float]], np.ndarray],
    grads_fn: Callable[[Sequence[float]], Tuple[np.ndarray, ...]],
) -> Tuple[Callable, Callable]:
    """Lift a parameterized single-qubit gate to its controlled version."""

    def matrix(params: Sequence[float]) -> np.ndarray:
        return controlled(matrix_fn(params))

    def grads(params: Sequence[float]) -> Tuple[np.ndarray, ...]:
        outs = []
        for grad in grads_fn(params):
            block = np.zeros((2 * grad.shape[0], 2 * grad.shape[0]), dtype=complex)
            block[grad.shape[0]:, grad.shape[0]:] = grad
            outs.append(block)
        return tuple(outs)

    return matrix, grads


_cu3_matrix, _cu3_grads = _controlled_param(_u3_matrix, _u3_grads)
_cu1_matrix, _cu1_grads = _controlled_param(_u1_matrix, _u1_grads)
_crx_matrix, _crx_grads = _controlled_param(_rx_matrix, _rx_grads)
_cry_matrix, _cry_grads = _controlled_param(_ry_matrix, _ry_grads)
_crz_matrix, _crz_grads = _controlled_param(_rz_matrix, _rz_grads)


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class GateSpec:
    """Static description of a gate type."""

    name: str
    num_qubits: int
    num_params: int
    matrix_fn: Callable[[Sequence[float]], np.ndarray]
    grads_fn: Callable[[Sequence[float]], Tuple[np.ndarray, ...]] | None = None

    @property
    def is_parameterized(self) -> bool:
        return self.num_params > 0


def _fixed(name: str, num_qubits: int, matrix: np.ndarray) -> GateSpec:
    frozen = matrix.copy()
    frozen.setflags(write=False)
    return GateSpec(name, num_qubits, 0, lambda _params, _m=frozen: _m)


GATES: Dict[str, GateSpec] = {}


def _register(spec: GateSpec) -> None:
    GATES[spec.name] = spec


for _name, _nq, _mat in [
    ("i", 1, PAULI_I),
    ("x", 1, PAULI_X),
    ("y", 1, PAULI_Y),
    ("z", 1, PAULI_Z),
    ("h", 1, _H),
    ("sh", 1, _SH),
    ("s", 1, _S),
    ("sdg", 1, _SDG),
    ("t", 1, _T),
    ("tdg", 1, _TDG),
    ("sx", 1, _SX),
    ("sxdg", 1, _SXDG),
    ("cx", 2, _CX),
    ("cz", 2, _CZ),
    ("cy", 2, _CY),
    ("swap", 2, _SWAP),
    ("sqswap", 2, _SQSWAP),
    ("iswap", 2, _ISWAP),
]:
    _register(_fixed(_name, _nq, _mat))

for _name, _nq, _np_, _mfn, _gfn in [
    ("rx", 1, 1, _rx_matrix, _rx_grads),
    ("ry", 1, 1, _ry_matrix, _ry_grads),
    ("rz", 1, 1, _rz_matrix, _rz_grads),
    ("u1", 1, 1, _u1_matrix, _u1_grads),
    ("u2", 1, 2, _u2_matrix, _u2_grads),
    ("u3", 1, 3, _u3_matrix, _u3_grads),
    ("rxx", 2, 1, _rxx_matrix, _rxx_grads),
    ("ryy", 2, 1, _ryy_matrix, _ryy_grads),
    ("rzz", 2, 1, _rzz_matrix, _rzz_grads),
    ("rzx", 2, 1, _rzx_matrix, _rzx_grads),
    ("cu1", 2, 1, _cu1_matrix, _cu1_grads),
    ("cu3", 2, 3, _cu3_matrix, _cu3_grads),
    ("crx", 2, 1, _crx_matrix, _crx_grads),
    ("cry", 2, 1, _cry_matrix, _cry_grads),
    ("crz", 2, 1, _crz_matrix, _crz_grads),
]:
    _register(GateSpec(_name, _nq, _np_, _mfn, _gfn))

# Aliases used by the paper's design-space descriptions.
_ALIASES = {
    "cnot": "cx",
    "zz": "rzz",
    "zx": "rzx",
    "xx": "rxx",
    "p": "u1",
    "phase": "u1",
    "cp": "cu1",
}


def canonical_name(name: str) -> str:
    """Resolve gate aliases (e.g. ``cnot`` -> ``cx``) to the registry name."""
    lowered = name.lower()
    return _ALIASES.get(lowered, lowered)


def gate_spec(name: str) -> GateSpec:
    """Look up the :class:`GateSpec` for ``name`` (aliases allowed)."""
    key = canonical_name(name)
    if key not in GATES:
        raise KeyError(f"unknown gate '{name}'")
    return GATES[key]


def gate_matrix(name: str, params: Sequence[float] = ()) -> np.ndarray:
    """Return the unitary matrix of gate ``name`` with ``params``."""
    spec = gate_spec(name)
    if len(params) != spec.num_params:
        raise ValueError(
            f"gate '{name}' expects {spec.num_params} parameters, got {len(params)}"
        )
    return np.asarray(spec.matrix_fn(tuple(params)), dtype=complex)


def gate_gradients(name: str, params: Sequence[float]) -> Tuple[np.ndarray, ...]:
    """Return ``dU/dp`` for each parameter ``p`` of gate ``name``."""
    spec = gate_spec(name)
    if spec.grads_fn is None:
        return ()
    return spec.grads_fn(tuple(params))


def gate_num_params(name: str) -> int:
    """Number of free parameters of gate ``name``."""
    return gate_spec(name).num_params


def gate_num_qubits(name: str) -> int:
    """Number of qubits gate ``name`` acts on."""
    return gate_spec(name).num_qubits


def is_parameterized(name: str) -> bool:
    """Whether gate ``name`` carries trainable parameters."""
    return gate_spec(name).is_parameterized
