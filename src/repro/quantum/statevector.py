"""Batched statevector simulation (the noise-free "TorchQuantum" engine).

States are stored as arrays of shape ``(batch,) + (2,) * n_qubits`` so a whole
minibatch of data-encoded circuits is simulated with a single sequence of
tensor contractions — this is the batched execution mode that gives the large
speedups over per-sample parameter-shift loops reported in Fig. 12 of the
paper.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence, Tuple

import numpy as np

from .circuit import ParameterizedCircuit, QuantumCircuit
from .gates import gate_matrix
from .operators import PauliString, PauliSum

__all__ = [
    "zero_state",
    "apply_matrix",
    "apply_pauli",
    "op_matrix",
    "run_circuit",
    "run_parameterized",
    "run_parameterized_rows",
    "circuit_unitary",
    "probabilities",
    "expectation_z",
    "expectation_z_all",
    "expectation_pauli_string",
    "expectation_pauli_sum",
    "apply_pauli_sum",
    "state_fidelity",
]


def zero_state(n_qubits: int, batch: int = 1) -> np.ndarray:
    """The ``|0...0>`` state replicated ``batch`` times."""
    states = np.zeros((batch,) + (2,) * n_qubits, dtype=complex)
    states[(slice(None),) + (0,) * n_qubits] = 1.0
    return states


def _num_qubits_of(states: np.ndarray) -> int:
    return states.ndim - 1


def apply_matrix(
    states: np.ndarray, matrix: np.ndarray, qubits: Sequence[int]
) -> np.ndarray:
    """Apply a ``k``-qubit unitary to the given qubits of a batched state.

    ``matrix`` may be a single ``(2**k, 2**k)`` array (shared across the batch)
    or a batched ``(batch, 2**k, 2**k)`` array (per-sample encoder gates).
    """
    k = len(qubits)
    dim = 2**k
    state_axes = [1 + q for q in qubits]

    if matrix.ndim == 2:
        reshaped = matrix.reshape((2,) * (2 * k))
        moved = np.tensordot(reshaped, states, axes=(list(range(k, 2 * k)), state_axes))
        return np.moveaxis(moved, list(range(k)), state_axes)

    if matrix.ndim != 3:
        raise ValueError("matrix must have 2 or 3 dimensions")
    batch = states.shape[0]
    if matrix.shape[0] != batch:
        raise ValueError("batched matrix leading dimension must equal the batch size")
    # Bring the target qubit axes next to the batch axis, flatten, multiply.
    moved = np.moveaxis(states, state_axes, list(range(1, 1 + k)))
    tail_shape = moved.shape[1 + k:]
    flat = moved.reshape(batch, dim, -1)
    out = np.einsum("bij,bjr->bir", matrix, flat)
    out = out.reshape((batch,) + (2,) * k + tail_shape)
    return np.moveaxis(out, list(range(1, 1 + k)), state_axes)


def apply_pauli(states: np.ndarray, qubit: int, pauli: str) -> np.ndarray:
    """Apply a single-qubit Pauli operator to a batched state."""
    return apply_matrix(states, gate_matrix(pauli.lower()), (qubit,))


def run_circuit(
    circuit: QuantumCircuit,
    states: Optional[np.ndarray] = None,
    batch: int = 1,
) -> np.ndarray:
    """Evolve ``states`` (default ``|0...0>``) through a concrete circuit."""
    if states is None:
        states = zero_state(circuit.n_qubits, batch)
    for instruction in circuit.instructions:
        states = apply_matrix(states, instruction.matrix(), instruction.qubits)
    return states


def resolved_operations(
    pcirc: ParameterizedCircuit,
    weights: np.ndarray,
    features: Optional[np.ndarray] = None,
) -> Iterable[Tuple[str, Tuple[int, ...], np.ndarray]]:
    """Yield ``(gate, qubits, params)`` with parameters resolved.

    ``params`` has shape ``(n_params,)`` for sample-independent operations and
    ``(batch, n_params)`` for encoder operations.
    """
    for op in pcirc.ops:
        yield op.gate, op.qubits, pcirc.resolve_params(op, weights, features)


def op_matrix(gate: str, params: np.ndarray) -> np.ndarray:
    """Matrix for resolved parameters, batched if ``params`` is 2-D."""
    if params.ndim == 2:
        return np.stack([gate_matrix(gate, row) for row in params])
    return gate_matrix(gate, params)


# backwards-compatible alias
_op_matrix = op_matrix


def run_parameterized(
    pcirc: ParameterizedCircuit,
    weights: np.ndarray,
    features: Optional[np.ndarray] = None,
    batch: Optional[int] = None,
) -> np.ndarray:
    """Simulate a parameterized circuit for a batch of inputs.

    ``features`` (if given) has shape ``(batch, n_features)``; otherwise a
    single sample (``batch`` defaults to 1) is simulated.
    """
    weights = np.asarray(weights, dtype=float)
    if features is not None:
        features = np.asarray(features, dtype=float)
        if features.ndim == 1:
            features = features[None, :]
        batch = features.shape[0]
    states = zero_state(pcirc.n_qubits, batch or 1)
    for gate, qubits, params in resolved_operations(pcirc, weights, features):
        states = apply_matrix(states, _op_matrix(gate, params), qubits)
    return states


def run_parameterized_rows(
    pcirc: ParameterizedCircuit,
    weight_rows: np.ndarray,
    features: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Simulate a circuit for a whole *matrix* of weight vectors at once.

    The gradient sibling of :func:`run_parameterized`: a parameter-shift
    gradient evaluates the same structure under ``2 * num_weights + 1``
    weight vectors, so the weight rows join the batch dimension.  Returns
    states of shape ``(n_rows * batch,) + (2,) * n_qubits`` in row-major
    order (weight row varies slowest, feature row fastest); ``features``
    defaults to a single empty sample (``batch = 1``).

    Per-pair states match ``run_parameterized(pcirc, weight_rows[r],
    features)`` up to last-ulp contraction-order differences: a shared gate
    applies as one 2-D matrix there and as part of a stacked batch here.
    """
    weight_rows = np.asarray(weight_rows, dtype=float)
    if weight_rows.ndim != 2:
        raise ValueError("run_parameterized_rows expects a 2-D weight matrix")
    n_rows = weight_rows.shape[0]
    if n_rows == 0:
        raise ValueError("run_parameterized_rows needs at least one weight row")
    if features is not None:
        features = np.asarray(features, dtype=float)
        if features.ndim == 1:
            features = features[None, :]
        batch = features.shape[0]
    else:
        batch = 1
    states = zero_state(pcirc.n_qubits, n_rows * batch)
    for op in pcirc.ops:
        if op.is_trainable:
            if op.uses_input:
                # mixed weight/input op: per-row (batch, k) blocks, row-major
                params = np.concatenate(
                    [
                        np.atleast_2d(pcirc.resolve_params(op, row, features))
                        for row in weight_rows
                    ],
                    axis=0,
                )
                matrix = op_matrix(op.gate, params)
            else:
                params = np.stack(
                    [pcirc.resolve_params(op, row, None) for row in weight_rows]
                )
                matrix = op_matrix(op.gate, params)
                if batch > 1:
                    matrix = np.repeat(matrix, batch, axis=0)
        elif op.uses_input:
            params = np.atleast_2d(
                pcirc.resolve_params(op, weight_rows[0], features)
            )
            matrix = op_matrix(op.gate, params)
            if n_rows > 1:
                matrix = np.tile(matrix, (n_rows, 1, 1))
        else:
            # constant op: one matrix shared by every (row, sample) pair
            matrix = op_matrix(
                op.gate, pcirc.resolve_params(op, weight_rows[0], None)
            )
        states = apply_matrix(states, matrix, op.qubits)
    return states


def circuit_unitary(circuit: QuantumCircuit) -> np.ndarray:
    """Dense unitary matrix of a concrete circuit (small circuits only)."""
    dim = 2**circuit.n_qubits
    basis = np.eye(dim, dtype=complex).reshape((dim,) + (2,) * circuit.n_qubits)
    evolved = run_circuit(circuit, states=basis)
    return evolved.reshape(dim, dim).T


def probabilities(states: np.ndarray) -> np.ndarray:
    """Computational-basis probabilities, shape ``(batch, 2**n)``."""
    batch = states.shape[0]
    flat = states.reshape(batch, -1)
    return np.abs(flat) ** 2


def expectation_z(states: np.ndarray, qubit: int) -> np.ndarray:
    """Expectation of Pauli-Z on ``qubit``; returns shape ``(batch,)``."""
    n_qubits = _num_qubits_of(states)
    probs = np.abs(states) ** 2
    axes = tuple(a for a in range(1, n_qubits + 1) if a != 1 + qubit)
    marginal = probs.sum(axis=axes)
    return marginal[:, 0] - marginal[:, 1]


def expectation_z_all(states: np.ndarray) -> np.ndarray:
    """Z expectations on every qubit; returns shape ``(batch, n_qubits)``."""
    n_qubits = _num_qubits_of(states)
    return np.stack([expectation_z(states, q) for q in range(n_qubits)], axis=1)


def expectation_pauli_string(states: np.ndarray, term: PauliString) -> np.ndarray:
    """Expectation value of a single Pauli string, shape ``(batch,)``."""
    transformed = states
    for qubit, pauli in term.paulis:
        transformed = apply_pauli(transformed, qubit, pauli)
    batch = states.shape[0]
    overlap = np.sum(
        np.conj(states.reshape(batch, -1)) * transformed.reshape(batch, -1), axis=1
    )
    return term.coefficient * overlap.real


def expectation_pauli_sum(states: np.ndarray, observable: PauliSum) -> np.ndarray:
    """Expectation value of a weighted Pauli sum, shape ``(batch,)``."""
    batch = states.shape[0]
    total = np.zeros(batch)
    for term in observable.terms:
        if term.is_identity:
            total += term.coefficient
        else:
            total += expectation_pauli_string(states, term)
    return total


def apply_pauli_sum(states: np.ndarray, observable: PauliSum) -> np.ndarray:
    """Apply ``H = sum_i c_i P_i`` to a batched state (not a unitary)."""
    out = np.zeros_like(states)
    for term in observable.terms:
        transformed = states
        for qubit, pauli in term.paulis:
            transformed = apply_pauli(transformed, qubit, pauli)
        out = out + term.coefficient * transformed
    return out


def state_fidelity(state_a: np.ndarray, state_b: np.ndarray) -> float:
    """``|<a|b>|^2`` between two single (non-batched or batch-1) states."""
    vec_a = np.asarray(state_a, dtype=complex).reshape(-1)
    vec_b = np.asarray(state_b, dtype=complex).reshape(-1)
    return float(np.abs(np.vdot(vec_a, vec_b)) ** 2)
