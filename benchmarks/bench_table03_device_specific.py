"""Table III — device-specific circuits: the circuit searched for a device
performs best when run on that device.
"""

from helpers import measured_metrics, print_table, run_quantumnas_qml, small_task
from repro.devices import get_device

DEVICES = ["yorktown", "santiago"]
TASK = "fashion-4"


def run_experiment():
    dataset, _encoder = small_task(TASK)
    results = {name: run_quantumnas_qml("u3cu3", TASK, device_name=name)
               for name in DEVICES}
    rows = []
    for run_on in DEVICES:
        row = [run_on]
        device = get_device(run_on)
        for searched_for in DEVICES:
            result = results[searched_for]
            metrics = measured_metrics(result.model, result.weights, dataset,
                                       layout=result.best_mapping, device=device)
            row.append(metrics["accuracy"])
        rows.append(row)
    return rows


def test_table03_device_specific(benchmark):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    print_table(
        ["run on \\ searched for"] + DEVICES,
        rows,
        title=f"Table III — device-specific circuits ({TASK}, U3+CU3)",
    )
    # diagonal entries (matched search/run device) should be competitive
    for index, row in enumerate(rows):
        matched = row[index + 1]
        assert matched >= min(row[1:]) - 0.1
