"""Ablation — noise-model estimator vs success-rate estimator.

Compares the two estimation modes (Section III-C) on speed and on how well
they rank a set of candidate SubCircuits against the noisy-backend ground
truth.
"""

import time

import numpy as np

from helpers import measured_metrics, print_table, small_task, train_model
from repro.core import (
    ConfigSampler,
    EstimatorConfig,
    PerformanceEstimator,
    SamplerConfig,
    SuperCircuit,
    SuperTrainConfig,
    get_design_space,
    train_supercircuit_qml,
)
from repro.devices import get_device
from repro.utils.stats import spearman_correlation

N_CANDIDATES = 6


def run_experiment():
    dataset, encoder = small_task("mnist-4")
    space = get_design_space("u3cu3")
    device = get_device("yorktown")
    supercircuit = SuperCircuit(space, 4, encoder=encoder, seed=0)
    train_supercircuit_qml(supercircuit, dataset, 4,
                           SuperTrainConfig(steps=40, batch_size=32, seed=0))
    sampler = ConfigSampler(space, 4, SamplerConfig(progressive_shrink=False),
                            rng=np.random.default_rng(3))
    candidates = [sampler.sample() for _ in range(N_CANDIDATES)]

    ground_truth = []
    for config in candidates:
        circuit, _ = supercircuit.build_standalone_circuit(config)
        model, weights = train_model(circuit, dataset, 4, epochs=6)
        ground_truth.append(
            measured_metrics(model, weights, dataset, layout=(0, 1, 2, 3),
                             max_samples=10)["loss"]
        )

    rows = []
    for mode in ("noise_sim", "success_rate"):
        estimator = PerformanceEstimator(
            device, EstimatorConfig(mode=mode, n_valid_samples=6)
        )
        start = time.perf_counter()
        predictions = []
        for config in candidates:
            circuit, _ = supercircuit.build_standalone_circuit(config)
            weights = supercircuit.inherited_weights(config)
            predictions.append(
                estimator.estimate_qml(circuit, weights, dataset, 4,
                                       layout=(0, 1, 2, 3))
            )
        elapsed = (time.perf_counter() - start) / N_CANDIDATES
        correlation = spearman_correlation(np.array(predictions),
                                           np.array(ground_truth))
        rows.append([mode, elapsed, correlation])
    return rows


def test_ablation_estimator_modes(benchmark):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    print_table(
        ["estimator mode", "seconds / candidate", "rank correlation vs measured"],
        rows,
        title="Ablation — noise-model vs success-rate estimator",
    )
    by_mode = {row[0]: row for row in rows}
    # the success-rate estimator must be the faster of the two
    assert by_mode["success_rate"][1] <= by_mode["noise_sim"][1]
