"""Fig. 14 — QuantumNAS on several 5-qubit devices, including the accuracy of
the searched circuit when re-measured after calibration drift ("3 weeks later").
"""

from helpers import measured_metrics, print_table, run_quantumnas_qml, small_task
from repro.devices import get_device

DEVICES = ["belem", "santiago"]
TASK = "fashion-4"


def run_experiment():
    dataset, _encoder = small_task(TASK)
    rows = []
    for name in DEVICES:
        device = get_device(name)
        nas = run_quantumnas_qml("u3cu3", TASK, device_name=name, device=device)
        drifted = device.recalibrated(weeks_later=3)
        later = measured_metrics(nas.model, nas.weights, dataset,
                                 layout=nas.best_mapping, device=drifted)
        rows.append([
            name,
            device.quantum_volume,
            nas.measured["accuracy"],
            later["accuracy"],
            nas.noise_free["accuracy"],
        ])
    return rows


def test_fig14_devices(benchmark):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    print_table(
        ["device", "quantum volume", "measured acc (immediately)",
         "measured acc (3 weeks later)", "noise-free acc"],
        rows,
        title=f"Fig. 14 — QuantumNAS on 5-qubit devices ({TASK}, U3+CU3)",
    )
    for row in rows:
        # drift should not destroy the searched circuit entirely
        assert row[3] >= row[2] - 0.35
