"""Fig. 9 — SubCircuits evaluated with inherited SuperCircuit parameters rank
similarly to the same SubCircuits trained from scratch (Spearman correlation).
"""

import numpy as np

from helpers import print_table, small_task
from repro.core import (
    ConfigSampler,
    SamplerConfig,
    SuperCircuit,
    SuperTrainConfig,
    get_design_space,
    train_supercircuit_qml,
)
from repro.qml import QNNModel, TrainConfig, train_qnn
from repro.utils.stats import spearman_correlation

N_SUBCIRCUITS = 8


def run_experiment():
    dataset, encoder = small_task("mnist-4")
    space = get_design_space("u3cu3")
    supercircuit = SuperCircuit(space, 4, encoder=encoder, seed=0)
    train_supercircuit_qml(
        supercircuit, dataset, 4,
        SuperTrainConfig(steps=60, batch_size=32, seed=0),
    )
    sampler = ConfigSampler(space, 4, SamplerConfig(progressive_shrink=False),
                            rng=np.random.default_rng(1))
    inherited_losses, scratch_losses = [], []
    for _ in range(N_SUBCIRCUITS):
        config = sampler.sample()
        circuit, _mapping = supercircuit.build_standalone_circuit(config)
        model = QNNModel.from_circuit(circuit, 4)
        inherited = supercircuit.inherited_weights(config)
        loss_inherited, _acc = model.loss(inherited, dataset.x_valid, dataset.y_valid)
        trained = train_qnn(
            model, dataset,
            TrainConfig(epochs=8, batch_size=32, learning_rate=0.02, seed=0),
        )
        loss_scratch, _acc = model.loss(trained.weights, dataset.x_valid,
                                        dataset.y_valid)
        inherited_losses.append(loss_inherited)
        scratch_losses.append(loss_scratch)
    correlation = spearman_correlation(np.array(inherited_losses),
                                       np.array(scratch_losses))
    return inherited_losses, scratch_losses, correlation


def test_fig09_inherited_correlation(benchmark):
    inherited, scratch, correlation = benchmark.pedantic(
        run_experiment, rounds=1, iterations=1
    )
    rows = [[i, a, b] for i, (a, b) in enumerate(zip(inherited, scratch))]
    rows.append(["spearman", correlation, ""])
    print_table(
        ["subcircuit", "loss (inherited params)", "loss (trained from scratch)"],
        rows,
        title="Fig. 9 — inherited vs from-scratch SubCircuit performance",
    )
    # the paper reports ~0.75 average correlation; positive rank correlation is
    # the property the search relies on
    assert correlation > 0.0
