"""Fig. 21 — effect of qubit topology, error rate and qubit mapping on the
measured accuracy of the same trained circuit.
"""

from helpers import measured_metrics, print_table, small_task, train_model
from repro.baselines import build_human_circuit
from repro.core import get_design_space
from repro.devices import get_device

DEVICES = ["santiago", "rome", "athens", "lima", "belem", "quito", "yorktown"]
TASK = "mnist-4"


def run_experiment():
    dataset, encoder = small_task(TASK)
    space = get_design_space("u3cu3")
    circuit, _config = build_human_circuit(space, 4, 24, encoder=encoder)
    model, weights = train_model(circuit, dataset, 4)
    rows = []
    for name in DEVICES:
        device = get_device(name)
        summary = device.error_summary()
        naive = measured_metrics(model, weights, dataset, layout="trivial",
                                 device=device)
        searched = measured_metrics(model, weights, dataset,
                                    layout="noise_adaptive", device=device)
        rows.append([
            name,
            device.topology.name.split("-")[-1],
            summary["two_qubit_error"],
            summary["readout_error"],
            naive["accuracy"],
            searched["accuracy"],
        ])
    return rows


def test_fig21_topology_error(benchmark):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    print_table(
        ["device", "topology", "cx error", "readout error",
         "acc (naive mapping)", "acc (noise-adaptive mapping)"],
        rows,
        title="Fig. 21 — topology / error rate / mapping effects (MNIST-4)",
    )
    by_name = {row[0]: row for row in rows}
    # lower error rate (santiago) should beat the noisiest device (yorktown)
    assert by_name["santiago"][5] >= by_name["yorktown"][5] - 0.1
