"""Fig. 20 — effect of restricted sampling + progressive shrinking on
SuperCircuit training (the sampling-stabilization ablation).

The stabilized sampler should give a SuperCircuit whose inherited-parameter
losses are lower (better-trained shared weights) than naive unrestricted
sampling under the same training budget.
"""

import numpy as np

from helpers import print_table, small_task
from repro.core import (
    ConfigSampler,
    SamplerConfig,
    SuperCircuit,
    SuperTrainConfig,
    SubCircuitConfig,
    get_design_space,
    train_supercircuit_qml,
)
from repro.qml import QNNModel

TASK = "mnist-4"
SPACE = "zxxx"


def _train_and_probe(restricted: bool, progressive: bool, dataset, encoder):
    space = get_design_space(SPACE)
    supercircuit = SuperCircuit(space, 4, encoder=encoder, seed=0)
    config = SuperTrainConfig(steps=60, batch_size=32, seed=0,
                              restricted_sampling=restricted,
                              progressive_shrink=progressive)
    train_supercircuit_qml(supercircuit, dataset, 4, config)
    # probe: average inherited-parameter validation loss over a few SubCircuits
    sampler = ConfigSampler(space, 4, SamplerConfig(progressive_shrink=False),
                            rng=np.random.default_rng(9))
    losses = []
    for _ in range(6):
        probe = sampler.sample()
        circuit, _ = supercircuit.build_standalone_circuit(probe)
        model = QNNModel.from_circuit(circuit, 4)
        loss, _acc = model.loss(supercircuit.inherited_weights(probe),
                                dataset.x_valid, dataset.y_valid)
        losses.append(loss)
    return float(np.mean(losses))


def run_experiment():
    dataset, encoder = small_task(TASK)
    naive = _train_and_probe(restricted=False, progressive=False,
                             dataset=dataset, encoder=encoder)
    stabilized = _train_and_probe(restricted=True, progressive=True,
                                  dataset=dataset, encoder=encoder)
    return [
        ["naive random sampling", naive],
        ["front + restricted + progressive sampling", stabilized],
    ]


def test_fig20_sampling_ablation(benchmark):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    print_table(
        ["SuperCircuit training sampler", "mean inherited validation loss"],
        rows,
        title=f"Fig. 20 — sampling ablation ({TASK}, {SPACE} space)",
    )
    # the stabilized sampler should not train a worse SuperCircuit
    assert rows[1][1] <= rows[0][1] + 0.15
