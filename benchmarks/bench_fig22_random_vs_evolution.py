"""Fig. 22 — evolutionary search vs random search under the same evaluation
budget (search traces and final best score).
"""

from helpers import print_table, small_task
from repro.core import (
    EstimatorConfig,
    EvolutionConfig,
    EvolutionEngine,
    PerformanceEstimator,
    SuperCircuit,
    SuperTrainConfig,
    get_design_space,
    random_search,
    train_supercircuit_qml,
)
from repro.devices import get_device

TASK = "mnist-4"
SPACE = "u3cu3"


def run_experiment():
    dataset, encoder = small_task(TASK)
    space = get_design_space(SPACE)
    device = get_device("yorktown")
    supercircuit = SuperCircuit(space, 4, encoder=encoder, seed=0)
    train_supercircuit_qml(supercircuit, dataset, 4,
                           SuperTrainConfig(steps=40, batch_size=32, seed=0))
    estimator = PerformanceEstimator(
        device, EstimatorConfig(mode="success_rate", n_valid_samples=8)
    )

    def score(config, mapping):
        circuit, _ = supercircuit.build_standalone_circuit(config)
        weights = supercircuit.inherited_weights(config)
        return estimator.estimate_qml(circuit, weights, dataset, 4, layout=mapping)

    engine = EvolutionEngine(
        space, 4, device,
        EvolutionConfig(iterations=10, population_size=12, parent_size=4,
                        mutation_size=5, crossover_size=3, seed=0),
    )
    evolution = engine.search(score)
    random_result = random_search(space, 4, device, score,
                                  n_samples=evolution.evaluated, seed=0)
    trace = [
        [entry["iteration"], entry["best_score"]] for entry in evolution.history
    ]
    return evolution, random_result, trace


def test_fig22_random_vs_evolution(benchmark):
    evolution, random_result, trace = benchmark.pedantic(
        run_experiment, rounds=1, iterations=1
    )
    print_table(["iteration", "evolution best loss"], trace,
                title="Fig. 22 — evolutionary search trace")
    print_table(
        ["method", "#evaluations", "best estimated loss"],
        [
            ["random search", random_result.evaluated, random_result.best_score],
            ["evolutionary search", evolution.evaluated, evolution.best_score],
        ],
        title="Fig. 22 — random vs evolutionary search (same budget)",
    )
    # with the harness's very small budget the two methods can land close to
    # each other; the evolutionary search must at least stay competitive and
    # its best-so-far trace must be monotone
    assert evolution.best_score <= random_result.best_score + 0.35
    scores = [row[1] for row in trace]
    assert all(b <= a + 1e-9 for a, b in zip(scores, scores[1:]))
