"""Fig. 23 — measured accuracy as a function of the final pruning ratio."""

from helpers import measured_metrics, print_table, small_task, train_model
from repro.baselines import build_human_circuit
from repro.core import get_design_space, iterative_prune_qnn
from repro.qml import TrainConfig

TASK = "fashion-2"
RATIOS = [0.0, 0.2, 0.4]


def run_experiment():
    dataset, encoder = small_task(TASK)
    space = get_design_space("u3cu3")
    circuit, _config = build_human_circuit(space, 4, 48, encoder=encoder)
    model, weights = train_model(circuit, dataset, 2)
    train_config = TrainConfig(epochs=4, batch_size=32, learning_rate=0.02, seed=0)
    rows = []
    for ratio in RATIOS:
        if ratio == 0.0:
            pruned_weights = weights
        else:
            pruning = iterative_prune_qnn(
                model, weights, dataset, final_ratio=ratio, n_stages=2,
                finetune_epochs=3, train_config=train_config,
            )
            pruned_weights = pruning.weights
        measured = measured_metrics(model, pruned_weights, dataset,
                                    layout="noise_adaptive")
        rows.append([f"{int(ratio * 100)}%", measured["accuracy"],
                     measured["loss"]])
    return rows


def test_fig23_pruning_ratio(benchmark):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    print_table(
        ["final pruning ratio", "measured accuracy", "measured loss"],
        rows,
        title=f"Fig. 23 — pruning-ratio sweep ({TASK}, U3+CU3, Yorktown)",
    )
    accuracies = [row[1] for row in rows]
    # moderate pruning should not collapse the accuracy
    assert max(accuracies[1:]) >= accuracies[0] - 0.2
