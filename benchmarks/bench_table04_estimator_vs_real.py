"""Table IV — searching with the noise-model estimator vs evaluating candidates
on the (shot-based) device itself, at compiler optimization levels 2 and 3.
"""

from helpers import (
    fast_pipeline_config,
    measured_metrics,
    print_table,
    small_task,
)
from repro.core import QuantumNASQMLPipeline, get_design_space
from repro.devices import get_device

TASK = "fashion-4"
DEVICE = "belem"


def _run(mode: str, optimization_level: int):
    dataset, encoder = small_task(TASK)
    config = fast_pipeline_config(estimator_mode=mode)
    config.estimator.optimization_level = optimization_level
    config.estimator.shots = 512
    config.estimator.n_valid_samples = 4
    config.evolution.iterations = 3
    config.evolution.population_size = 6
    config.evolution.parent_size = 2
    config.evolution.mutation_size = 2
    config.evolution.crossover_size = 2
    pipeline = QuantumNASQMLPipeline(
        get_design_space("u3cu3"), dataset, dataset.n_classes,
        get_device(DEVICE), encoder, config=config,
    )
    result = pipeline.run()
    return result.measured["accuracy"]


def run_experiment():
    rows = []
    for optimization_level in (2, 3):
        estimator_acc = _run("success_rate", optimization_level)
        real_qc_acc = _run("real_qc", optimization_level)
        rows.append([optimization_level, estimator_acc, real_qc_acc])
    return rows


def test_table04_estimator_vs_real(benchmark):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    print_table(
        ["optimization level", "search with estimator (acc)",
         "search with real QC in the loop (acc)"],
        rows,
        title=f"Table IV — estimator vs real-QC search ({TASK}, {DEVICE})",
    )
    for row in rows:
        # searching with the estimator should be about as good as searching on
        # the device itself (the paper's conclusion)
        assert abs(row[1] - row[2]) < 0.45
