"""Fig. 18 — VQE on larger molecules (LiH, H2O at 6 qubits) vs UCCSD,
evaluated with the device noise model of IBMQ-Casablanca.
"""

import numpy as np

from helpers import print_table
from repro.core import (
    EstimatorConfig,
    EvolutionConfig,
    PerformanceEstimator,
    SuperCircuit,
    SuperTrainConfig,
    get_design_space,
    train_subcircuit_vqe,
    train_supercircuit_vqe,
    EvolutionEngine,
)
from repro.devices import get_device
from repro.vqe import VQEConfig, VQEModel, build_uccsd_ansatz, load_molecule

MOLECULES = ["lih", "h2o"]


def run_experiment():
    device = get_device("casablanca")
    estimator = PerformanceEstimator(device, EstimatorConfig(mode="success_rate"))
    noisy_estimator = PerformanceEstimator(
        device, EstimatorConfig(mode="noise_sim", max_density_qubits=8)
    )
    space = get_design_space("u3cu3")
    rows = []
    for name in MOLECULES:
        molecule = load_molecule(name)

        # UCCSD baseline (deep problem ansatz)
        uccsd_model = VQEModel(build_uccsd_ansatz(molecule.n_qubits, max_doubles=2),
                               molecule)
        uccsd_trained = uccsd_model.train(
            VQEConfig(steps=60, learning_rate=0.05, seed=0)
        )
        uccsd_measured = noisy_estimator.estimate_vqe(
            uccsd_model.ansatz, uccsd_trained.weights, molecule,
            layout="noise_adaptive",
        )

        # QuantumNAS search (success-rate estimator for speed)
        supercircuit = SuperCircuit(space, molecule.n_qubits, seed=0)
        train_supercircuit_vqe(
            supercircuit, molecule,
            SuperTrainConfig(steps=30, batch_size=1, learning_rate=0.05, seed=0),
        )
        engine = EvolutionEngine(
            space, molecule.n_qubits, device,
            EvolutionConfig(iterations=3, population_size=8, parent_size=3,
                            mutation_size=3, crossover_size=2, seed=0),
        )

        def score(config, mapping):
            circuit, _ = supercircuit.build_standalone_circuit(
                config, include_encoder=False
            )
            weights = supercircuit.inherited_weights(config)
            return estimator.estimate_vqe(circuit, weights, molecule, layout=mapping)

        search = engine.search(score)
        model, trained = train_subcircuit_vqe(
            supercircuit, search.best.config, molecule,
            VQEConfig(steps=60, learning_rate=0.05, seed=0),
        )
        nas_measured = noisy_estimator.estimate_vqe(
            model.ansatz, trained.weights, molecule, layout=search.best.mapping
        )
        rows.append([name, molecule.n_qubits, uccsd_measured, nas_measured,
                     molecule.ground_energy])
    return rows


def test_fig18_vqe_molecules(benchmark):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    print_table(
        ["molecule", "#qubits", "UCCSD measured", "QuantumNAS measured",
         "exact ground energy"],
        rows,
        title="Fig. 18 — VQE expectation values on IBMQ-Casablanca (lower is better)",
    )
    for row in rows:
        # the searched hardware-adapted ansatz should not lose to UCCSD under noise
        assert row[3] <= row[2] + abs(row[4]) * 0.25
