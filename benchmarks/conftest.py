"""Benchmark-harness configuration.

Each benchmark is a single expensive experiment; pytest-benchmark is configured
through ``benchmark.pedantic(..., rounds=1, iterations=1)`` inside the tests so
experiments are not repeated.
"""

import sys
from pathlib import Path

# make `helpers` importable when pytest is run from the repository root
sys.path.insert(0, str(Path(__file__).parent))
