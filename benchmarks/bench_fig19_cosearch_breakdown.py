"""Fig. 19 — accuracy-improvement breakdown: circuit-only search, mapping-only
search, and the full circuit + qubit-mapping co-search.
"""

from helpers import (
    baseline_measured_accuracy,
    print_table,
    run_quantumnas_qml,
    small_task,
    measured_metrics,
    train_model,
    fast_pipeline_config,
)
from repro.baselines import build_human_circuit
from repro.core import (
    EvolutionConfig,
    QuantumNASQMLPipeline,
    get_design_space,
)
from repro.devices import get_device

TASK = "mnist-4"
SPACE = "u3cu3"


def run_experiment():
    dataset, encoder = small_task(TASK)
    space = get_design_space(SPACE)
    device = get_device("yorktown")

    # full co-search (population evaluation through the batched engine)
    full = run_quantumnas_qml(SPACE, TASK, "yorktown", engine="batched")
    n_params = full.best_config.num_parameters(space)

    # human circuit + naive / noise-adaptive mapping
    human_naive = baseline_measured_accuracy("human", SPACE, TASK, n_params,
                                             layout="trivial")
    human_adaptive = baseline_measured_accuracy("human", SPACE, TASK, n_params,
                                                layout="noise_adaptive")

    # circuit-only search (mapping fixed to the trivial one); this leg runs
    # through the sequential engine so the benchmark exercises both modes
    config = fast_pipeline_config(engine="sequential")
    config.evolution = EvolutionConfig(
        iterations=6, population_size=12, parent_size=4, mutation_size=5,
        crossover_size=3, seed=0, search_mapping=False,
    )
    circuit_only = QuantumNASQMLPipeline(space, dataset, dataset.n_classes, device,
                                         encoder, config=config).run()

    rows = [
        ["human circuit + naive mapping", human_naive["accuracy"]],
        ["human circuit + noise-adaptive mapping", human_adaptive["accuracy"]],
        ["searched circuit + naive mapping", circuit_only.measured["accuracy"]],
        ["circuit & mapping co-search (QuantumNAS)", full.measured["accuracy"]],
    ]
    return rows


def test_fig19_cosearch_breakdown(benchmark):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    print_table(
        ["configuration", "measured accuracy"],
        rows,
        title=f"Fig. 19 — co-search breakdown ({TASK}, {SPACE}, Yorktown)",
    )
    accuracies = [row[1] for row in rows]
    # the co-search should be at least competitive with the human baselines
    assert accuracies[3] >= min(accuracies[0], accuracies[1]) - 0.1
