"""Table II — compiled circuit properties (depth, gate counts, parameters,
measured accuracy) for QuantumNAS, the pruned circuit and the human baseline.
"""

import numpy as np

from helpers import (
    print_table,
    run_quantumnas_qml,
    small_task,
    train_model,
    measured_metrics,
)
from repro.baselines import build_human_circuit
from repro.core import get_design_space
from repro.devices import get_device
from repro.transpile import transpile

SPACE = "u3cu3"
TASK = "fashion-2"


def _compiled_row(name, circuit, weights, dataset, accuracy, device, layout):
    bound = circuit.bind(weights, dataset.x_test[0])
    compiled = transpile(bound, device, initial_layout=layout, optimization_level=2)
    n_params = int(np.count_nonzero(weights))
    return [name, compiled.depth, compiled.num_gates,
            compiled.num_single_qubit_gates, compiled.num_two_qubit_gates,
            n_params, accuracy]


def run_experiment():
    device = get_device("yorktown")
    dataset, encoder = small_task(TASK)
    space = get_design_space(SPACE)

    nas = run_quantumnas_qml(SPACE, TASK, "yorktown", pruning_ratio=0.3)
    n_params = nas.best_config.num_parameters(space)

    human_circuit, _cfg = build_human_circuit(space, 4, n_params, encoder=encoder)
    human_model, human_weights = train_model(human_circuit, dataset, 2)
    human_measured = measured_metrics(human_model, human_weights, dataset,
                                      "yorktown", layout="noise_adaptive")

    rows = [
        _compiled_row("human design", human_circuit, human_weights, dataset,
                      human_measured["accuracy"], device, "noise_adaptive"),
        _compiled_row("QuantumNAS", nas.model.circuit, nas.weights, dataset,
                      nas.measured["accuracy"], device, nas.best_mapping),
    ]
    if nas.pruning is not None and nas.measured_pruned is not None:
        rows.append(
            _compiled_row("QuantumNAS + pruning", nas.model.circuit,
                          nas.pruning.weights, dataset,
                          nas.measured_pruned["accuracy"], device,
                          nas.best_mapping)
        )
    return rows


def test_table02_circuit_properties(benchmark):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    print_table(
        ["design", "depth", "#gates", "#1Q", "#2Q", "#params (non-zero)",
         "measured acc"],
        rows,
        title=f"Table II — compiled circuit properties ({TASK}, {SPACE}, Yorktown)",
    )
    if len(rows) == 3:
        # pruning removes parameters and should not add gates
        assert rows[2][5] <= rows[1][5]
        assert rows[2][2] <= rows[1][2] + 2
