"""Fig. 16 — (a) training on the quantum device with parameter shift;
(b) runtime scaling of on-device training with the number of qubits.
"""

import time

import numpy as np

from helpers import print_table
from repro.devices import QuantumBackend, get_device
from repro.qml import (
    QNNModel,
    TrainConfig,
    encoder_for_task,
    load_task,
    make_parameter_shift_gradient_fn,
    train_qnn,
)
from repro.quantum.circuit import ParameterizedCircuit
from repro.quantum.statevector import run_parameterized


def _tiny_qnn():
    model = QNNModel(4, 4, encoder=encoder_for_task("mnist-4"))
    for qubit in range(4):
        model.add_trainable("ry", (qubit,))
    for qubit in range(3):
        model.add_trainable("rzz", (qubit, qubit + 1))
    return model


def run_training_curve():
    dataset = load_task("mnist-4", n_train=16, n_valid=8, n_test=8)
    model = _tiny_qnn()
    backend = QuantumBackend(get_device("santiago"), shots=0, seed=0)
    gradient_fn = make_parameter_shift_gradient_fn(backend=backend, shots=0)
    losses = []

    def log(epoch, record):
        losses.append(record["train_loss"])

    train_qnn(model, dataset, TrainConfig(epochs=3, batch_size=8, learning_rate=0.1,
                                          seed=0),
              gradient_fn=gradient_fn, log_fn=log)
    return losses


def run_runtime_scaling():
    """Wall-clock time of one parameter-shift step vs register size."""
    rows = []
    for n_qubits in (2, 4, 6, 8):
        pcirc = ParameterizedCircuit(n_qubits)
        for qubit in range(n_qubits - 1):
            pcirc.add_trainable("rzz", (qubit, qubit + 1))
        for qubit in range(n_qubits):
            pcirc.add_trainable("ry", (qubit,))
        weights = pcirc.init_weights(np.random.default_rng(0))
        start = time.perf_counter()
        for index in range(len(weights)):
            for sign in (+1, -1):
                shifted = weights.copy()
                shifted[index] += sign * np.pi / 2
                run_parameterized(pcirc, shifted, batch=1)
        elapsed = time.perf_counter() - start
        rows.append([n_qubits, len(weights), elapsed])
    return rows


def test_fig16_qc_training(benchmark):
    losses = benchmark.pedantic(run_training_curve, rounds=1, iterations=1)
    scaling = run_runtime_scaling()
    print_table(
        ["epoch", "train loss (parameter shift on device)"],
        [[i, loss] for i, loss in enumerate(losses)],
        title="Fig. 16a — on-device training curve (MNIST-4, Santiago)",
    )
    print_table(
        ["#qubits", "#params", "one parameter-shift step (s)"],
        scaling,
        title="Fig. 16b — parameter-shift step runtime vs #qubits",
    )
    assert losses[-1] <= losses[0] + 0.1
    assert scaling[-1][2] >= scaling[0][2]
