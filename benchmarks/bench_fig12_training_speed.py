"""Fig. 12 — training speed of the TorchQuantum-style engine vs a
PennyLane-style per-sample parameter-shift loop, across batch sizes.

Three execution modes are compared (scaled down to 6 qubits / 40 gates):
per-sample parameter-shift (the PennyLane baseline), batched adjoint gradients
in dynamic mode, and a static-mode (gate-fused) forward pass.

A second table extends the same batching story to the co-search hot path:
one population evaluated through the execution engine in its sequential and
batched modes (cold and with warm caches).
"""

import time

import numpy as np

from helpers import print_table, small_task
from repro.core import (
    EstimatorConfig,
    EvolutionConfig,
    EvolutionEngine,
    PerformanceEstimator,
    SuperCircuit,
    get_design_space,
)
from repro.core.evolution import Candidate
from repro.devices import get_device
from repro.execution import ExecutionEngine
from repro.quantum.autodiff import adjoint_gradient
from repro.quantum.circuit import ParameterizedCircuit
from repro.quantum.fusion import FusedCircuit
from repro.quantum.statevector import expectation_z_all, run_parameterized

N_QUBITS = 6
N_LAYER_PAIRS = 20
BATCH_SIZES = [1, 4, 16]


def _build_circuit() -> ParameterizedCircuit:
    pcirc = ParameterizedCircuit(N_QUBITS)
    for index in range(N_LAYER_PAIRS):
        pcirc.add_trainable("rx", (index % N_QUBITS,))
        pcirc.add_trainable("cry", (index % N_QUBITS, (index + 1) % N_QUBITS))
    return pcirc


def _per_sample_parameter_shift_step(pcirc, weights, batch: int) -> np.ndarray:
    """PennyLane-style: loop over the batch and shift every parameter."""
    total = np.zeros_like(weights)
    for _sample in range(batch):
        for index in range(len(weights)):
            for sign in (+1.0, -1.0):
                shifted = weights.copy()
                shifted[index] += sign * np.pi / 2
                states = run_parameterized(pcirc, shifted, batch=1)
                total[index] += sign * expectation_z_all(states).sum()
    return total


def _batched_adjoint_step(pcirc, weights, batch: int) -> np.ndarray:
    """TorchQuantum backprop mode: one batched forward + one adjoint sweep."""
    states = run_parameterized(pcirc, weights, batch=batch)
    coefficients = np.ones((batch, N_QUBITS)) / batch
    return adjoint_gradient(pcirc, weights, z_coefficients=coefficients,
                            states_final=states)


def _static_forward_step(pcirc, weights, batch: int) -> np.ndarray:
    """Static mode: fuse the bound circuit once, then run the batch."""
    fused = FusedCircuit.from_circuit(pcirc.bind(weights), max_fused_qubits=2)
    return fused.run(batch=batch)


def run_experiment():
    pcirc = _build_circuit()
    weights = pcirc.init_weights(np.random.default_rng(0))
    rows = []
    for batch in BATCH_SIZES:
        start = time.perf_counter()
        _per_sample_parameter_shift_step(pcirc, weights, batch)
        shift_time = time.perf_counter() - start

        start = time.perf_counter()
        _batched_adjoint_step(pcirc, weights, batch)
        adjoint_time = time.perf_counter() - start

        start = time.perf_counter()
        _static_forward_step(pcirc, weights, batch)
        static_time = time.perf_counter() - start

        rows.append([
            batch,
            1.0 / shift_time,
            1.0 / adjoint_time,
            1.0 / static_time,
            shift_time / adjoint_time,
        ])
    return rows


def run_population_experiment():
    """Population evaluation through the execution engine, both modes."""
    dataset, encoder = small_task("mnist-4")
    space = get_design_space("u3cu3")
    device = get_device("yorktown")
    supercircuit = SuperCircuit(space, 4, encoder=encoder, seed=3)
    evolution = EvolutionEngine(space, 4, device, EvolutionConfig(seed=11))
    genomes = [evolution.random_config() for _ in range(4)]
    candidates = [Candidate(genome, evolution.random_mapping())
                  for genome in genomes for _ in range(4)]

    timings = {}
    scores = {}
    for engine_mode in ("sequential", "batched"):
        estimator = PerformanceEstimator(
            device,
            EstimatorConfig(mode="success_rate", n_valid_samples=16,
                            engine=engine_mode),
        )
        engine = ExecutionEngine(estimator, supercircuit)
        start = time.perf_counter()
        scores[engine_mode] = engine.evaluate_qml_population(
            candidates, dataset, dataset.n_classes
        )
        cold = time.perf_counter() - start
        start = time.perf_counter()
        engine.evaluate_qml_population(candidates, dataset, dataset.n_classes)
        warm = time.perf_counter() - start
        timings[engine_mode] = (cold, warm)

    max_diff = float(np.max(np.abs(
        np.array(scores["sequential"]) - np.array(scores["batched"])
    )))
    rows = [
        [mode, len(candidates), timings[mode][0], timings[mode][1]]
        for mode in ("sequential", "batched")
    ]
    return rows, timings, max_diff


def test_fig12_training_speed(benchmark):
    def experiment():
        return run_experiment(), run_population_experiment()

    rows, (population_rows, timings, max_diff) = benchmark.pedantic(
        experiment, rounds=1, iterations=1
    )
    print_table(
        ["batch", "param-shift steps/s", "adjoint (dynamic) steps/s",
         "static forward steps/s", "adjoint speedup"],
        rows,
        title="Fig. 12 — training-speed comparison (6 qubits, 40 gates)",
    )
    print_table(
        ["engine", "candidates", "cold s", "warm s"],
        population_rows,
        title="Fig. 12b — co-search population evaluation (success_rate mode)",
    )
    # batched adjoint must beat the per-sample parameter-shift loop, and the
    # advantage must grow with the batch size
    speedups = [row[4] for row in rows]
    assert all(s > 1.0 for s in speedups)
    assert speedups[-1] > speedups[0]
    # the engine modes agree, and batched wins once its caches are warm
    assert max_diff < 1e-9
    assert timings["batched"][1] < timings["sequential"][1]
