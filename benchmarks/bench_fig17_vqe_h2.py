"""Fig. 17 — H2 VQE expectation values across design spaces vs the UCCSD
baseline, measured on the noisy IBMQ-Yorktown model.
"""

from helpers import print_table
from repro.core import (
    EstimatorConfig,
    EvolutionConfig,
    QuantumNASVQEPipeline,
    SuperTrainConfig,
    VQEPipelineConfig,
    get_design_space,
)
from repro.devices import QuantumBackend, get_device
from repro.vqe import VQEConfig, VQEModel, build_uccsd_ansatz, load_molecule

SPACES = ["u3cu3", "zzry"]


def _pipeline_config() -> VQEPipelineConfig:
    return VQEPipelineConfig(
        super_train=SuperTrainConfig(steps=50, batch_size=1, learning_rate=0.05,
                                     seed=0),
        evolution=EvolutionConfig(iterations=4, population_size=8, parent_size=3,
                                  mutation_size=3, crossover_size=2, seed=0),
        estimator=EstimatorConfig(mode="noise_sim", n_valid_samples=1),
        vqe_train=VQEConfig(steps=150, learning_rate=0.05, seed=0),
        pruning_ratio=0.5,
        eval_shots=0,
        seed=0,
    )


def run_experiment():
    molecule = load_molecule("h2")
    device = get_device("yorktown")

    uccsd = VQEModel(build_uccsd_ansatz(2), molecule)
    uccsd_trained = uccsd.train(VQEConfig(steps=150, learning_rate=0.05, seed=0))
    backend = QuantumBackend(device, shots=0, seed=0)
    uccsd_energy = uccsd.measure_energy(uccsd_trained.weights, backend,
                                        initial_layout="noise_adaptive")

    rows = [["uccsd (baseline)", uccsd_energy, ""]]
    for space_name in SPACES:
        pipeline = QuantumNASVQEPipeline(get_design_space(space_name), molecule,
                                         device, config=_pipeline_config())
        result = pipeline.run()
        pruned = result.measured_energy_pruned
        rows.append([f"quantumnas ({space_name})", result.measured_energy,
                     pruned if pruned is not None else ""])
    rows.append(["exact ground state", molecule.ground_energy, ""])
    return rows, uccsd_energy


def test_fig17_vqe_h2(benchmark):
    rows, uccsd_energy = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    print_table(
        ["method", "measured energy", "measured energy (pruned)"],
        rows,
        title="Fig. 17 — H2 VQE expectation value on IBMQ-Yorktown (lower is better)",
    )
    nas_energies = [row[1] for row in rows if str(row[0]).startswith("quantumnas")]
    # the searched ansatz should not be worse than the deep UCCSD baseline
    assert min(nas_energies) <= uccsd_energy + 0.3
