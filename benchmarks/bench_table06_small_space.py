"""Table VI — searching in a small/shallow space vs the full QuantumNAS space.

Shallow circuits carry less noise but also less capacity; QuantumNAS's larger
space lets the search trade the two off and find deeper-but-better circuits.
"""

import numpy as np

from helpers import (
    measured_metrics,
    print_table,
    run_quantumnas_qml,
    small_task,
    train_model,
)
from repro.core import SubCircuitConfig, SuperCircuit, get_design_space
from repro.devices import get_device
from repro.transpile import transpile

DEVICES = ["santiago", "yorktown"]
TASK = "mnist-4"


def _shallow_result(dataset, encoder, device_name):
    """A single full-width block (the 'shallow space' baseline)."""
    space = get_design_space("u3cu3")
    supercircuit = SuperCircuit(space, 4, encoder=encoder, seed=0)
    config = SubCircuitConfig.full(space, 4, n_blocks=1)
    circuit, _ = supercircuit.build_standalone_circuit(config)
    model, weights = train_model(circuit, dataset, 4)
    metrics = measured_metrics(model, weights, dataset, device_name,
                               layout="noise_adaptive")
    compiled = transpile(circuit.bind(weights, dataset.x_test[0]),
                         get_device(device_name),
                         initial_layout="noise_adaptive")
    return compiled.depth, metrics["accuracy"]


def run_experiment():
    dataset, encoder = small_task(TASK)
    rows = []
    for device_name in DEVICES:
        shallow_depth, shallow_acc = _shallow_result(dataset, encoder, device_name)
        nas = run_quantumnas_qml("u3cu3", TASK, device_name=device_name)
        compiled = transpile(
            nas.model.circuit.bind(nas.weights, dataset.x_test[0]),
            get_device(device_name), initial_layout=nas.best_mapping,
        )
        rows.append([device_name, shallow_depth, shallow_acc,
                     compiled.depth, nas.measured["accuracy"]])
    return rows


def test_table06_small_space(benchmark):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    print_table(
        ["device", "shallow depth", "shallow acc", "QuantumNAS depth",
         "QuantumNAS acc"],
        rows,
        title=f"Table VI — shallow space vs QuantumNAS ({TASK}, U3+CU3)",
    )
    for row in rows:
        assert row[4] >= row[2] - 0.25
