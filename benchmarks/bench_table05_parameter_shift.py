"""Table V — circuit training on the quantum device with parameter shift is
feasible: accuracies after classical training vs on-device training match.
"""

from helpers import print_table
from repro.devices import QuantumBackend, get_device
from repro.qml import (
    QNNModel,
    TrainConfig,
    encoder_for_task,
    evaluate_on_backend,
    load_task,
    make_parameter_shift_gradient_fn,
    train_qnn,
)

TASKS = [("mnist-2", "santiago"), ("fashion-2", "lima")]


def _tiny_model(task):
    model = QNNModel(4, 2, encoder=encoder_for_task(task))
    for qubit in range(4):
        model.add_trainable("ry", (qubit,))
    for qubit in range(3):
        model.add_trainable("rzz", (qubit, qubit + 1))
    return model


def run_experiment():
    rows = []
    for task, device_name in TASKS:
        dataset = load_task(task, n_train=24, n_valid=8, n_test=12)
        device = get_device(device_name)
        eval_backend = QuantumBackend(device, shots=0, seed=0)
        config = TrainConfig(epochs=4, batch_size=8, learning_rate=0.1, seed=0)

        classical_model = _tiny_model(task)
        classical = train_qnn(classical_model, dataset, config)
        classical_acc = evaluate_on_backend(
            classical_model, classical.weights, dataset.x_test, dataset.y_test,
            eval_backend, initial_layout="noise_adaptive", max_samples=12,
        )["accuracy"]

        qc_model = _tiny_model(task)
        train_backend = QuantumBackend(device, shots=0, seed=1)
        gradient_fn = make_parameter_shift_gradient_fn(backend=train_backend,
                                                       shots=0)
        on_device = train_qnn(qc_model, dataset, config, gradient_fn=gradient_fn)
        on_device_acc = evaluate_on_backend(
            qc_model, on_device.weights, dataset.x_test, dataset.y_test,
            eval_backend, initial_layout="noise_adaptive", max_samples=12,
        )["accuracy"]

        rows.append([task, device_name, classical_acc, on_device_acc])
    return rows


def test_table05_parameter_shift(benchmark):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    print_table(
        ["task", "device", "classically trained acc", "QC-trained acc"],
        rows,
        title="Table V — on-device parameter-shift training",
    )
    for row in rows:
        assert abs(row[2] - row[3]) <= 0.5
