"""Table V — circuit training on the quantum device with parameter shift is
feasible: accuracies after classical training vs on-device training match.

A second measurement gates the batched gradient engine: one shift-rule
gradient of the 4-qubit Table V workload (7 weights -> 15 weight rows x 8
samples under the Santiago noise model) is timed through every engine path.
``legacy`` is the historical sequential closure — with the parametric
transpile cache attached to its backend, so the comparison isolates *row
batching*, not caching; ``batched`` must beat it warm by >=
``REQUIRED_BATCHED_SPEEDUP``.  All engines must agree to 1e-9 (``sharded``
is contractually bitwise against ``sequential``).  Timings, per-engine
counters and the gate land in ``BENCH_gradients.json``; ``BENCH_SMOKE=1``
shrinks repetitions and skips the timing gate (shared CI runners).
"""

import json
import os
import time

import numpy as np

from helpers import print_table
from repro.devices import QuantumBackend, get_device
from repro.execution.cache import ParametricTranspileCache, TranspileCache
from repro.qml import (
    ParameterShiftGradient,
    QNNModel,
    TrainConfig,
    encoder_for_task,
    evaluate_on_backend,
    load_task,
    make_parameter_shift_gradient_fn,
    train_qnn,
)

TASKS = [("mnist-2", "santiago"), ("fashion-2", "lima")]

SMOKE = bool(int(os.environ.get("BENCH_SMOKE", "0")))
#: warm gradient evaluations averaged per engine path
WARM_REPEATS = 1 if SMOKE else 3
#: the acceptance gate: one batched shift-rule gradient beats the legacy
#: sequential closure warm by this factor on the 4q density workload
#: (measured ~7x; the floor absorbs CI timing noise)
REQUIRED_BATCHED_SPEEDUP = 5.0
GRADIENT_PATHS = ("legacy", "sequential", "batched", "sharded_w2")
GRADIENT_BATCH = 8
OUTPUT_JSON = "BENCH_gradients.json"


def _tiny_model(task):
    model = QNNModel(4, 2, encoder=encoder_for_task(task))
    for qubit in range(4):
        model.add_trainable("ry", (qubit,))
    for qubit in range(3):
        model.add_trainable("rzz", (qubit, qubit + 1))
    return model


def run_experiment():
    rows = []
    for task, device_name in TASKS:
        dataset = load_task(task, n_train=24, n_valid=8, n_test=12)
        device = get_device(device_name)
        eval_backend = QuantumBackend(device, shots=0, seed=0)
        config = TrainConfig(epochs=4, batch_size=8, learning_rate=0.1, seed=0)

        classical_model = _tiny_model(task)
        classical = train_qnn(classical_model, dataset, config)
        classical_acc = evaluate_on_backend(
            classical_model, classical.weights, dataset.x_test, dataset.y_test,
            eval_backend, initial_layout="noise_adaptive", max_samples=12,
        )["accuracy"]

        qc_model = _tiny_model(task)
        train_backend = QuantumBackend(device, shots=0, seed=1)
        gradient_fn = make_parameter_shift_gradient_fn(backend=train_backend,
                                                       shots=0)
        on_device = train_qnn(qc_model, dataset, config, gradient_fn=gradient_fn)
        on_device_acc = evaluate_on_backend(
            qc_model, on_device.weights, dataset.x_test, dataset.y_test,
            eval_backend, initial_layout="noise_adaptive", max_samples=12,
        )["accuracy"]

        rows.append([task, device_name, classical_acc, on_device_acc])
    return rows


def _gradient_workload():
    """The Table V 4-qubit on-device training workload, one gradient step."""
    model = _tiny_model("mnist-2")
    rng = np.random.default_rng(0)
    weights = rng.uniform(-np.pi, np.pi, size=model.num_weights)
    features = rng.uniform(-np.pi, np.pi, size=(GRADIENT_BATCH, 16))
    labels = rng.integers(0, 2, size=GRADIENT_BATCH)
    return model, weights, features, labels


def _time_gradient_path(path, device, model, weights, features, labels):
    """Cold + warm timings of one engine path on a fresh, fair backend."""
    engine = "sequential" if path.startswith("sharded") else path
    workers = int(path.split("_w")[1]) if path.startswith("sharded") else 1
    # every path gets both caches — the legacy baseline re-binds angles
    # through the parametric cache too, so the gate measures row batching
    backend = QuantumBackend(
        device, shots=0, seed=0,
        transpile_cache=TranspileCache(),
        parametric_cache=ParametricTranspileCache(),
    )
    with ParameterShiftGradient(
        backend, shots=0, engine=engine, workers=workers, seed=0
    ) as gradient:
        if workers > 1:
            # pool startup happens outside the timed region, like the
            # execution-engine benchmark's sharded columns
            gradient._engine.warm_up()
        start = time.perf_counter()
        loss, grads = gradient(model, weights, features, labels)
        cold = time.perf_counter() - start
        start = time.perf_counter()
        for _repeat in range(WARM_REPEATS):
            gradient(model, weights, features, labels)
        warm = (time.perf_counter() - start) / WARM_REPEATS
        report = gradient.epoch_report()
    return {
        "loss": float(loss),
        "grads": np.asarray(grads),
        "cold_seconds": cold,
        "warm_seconds": warm,
        "counters": {
            key: value
            for key, value in report.items()
            if not key.endswith("seconds")
        },
    }


def run_gradient_experiment():
    device = get_device("santiago")
    model, weights, features, labels = _gradient_workload()
    runs = {
        path: _time_gradient_path(
            path, device, model, weights, features, labels
        )
        for path in GRADIENT_PATHS
    }
    reference = runs["legacy"]
    report = {
        "workload": {
            "task": "mnist-2",
            "device": device.name,
            "n_qubits": 4,
            "num_weights": int(model.num_weights),
            "shift_rows": 2 * int(model.num_weights) + 1,
            "batch": GRADIENT_BATCH,
            "warm_repeats": WARM_REPEATS,
            "smoke": SMOKE,
        },
        "paths": {},
        "required_batched_speedup": REQUIRED_BATCHED_SPEEDUP,
    }
    rows = []
    for path, run in runs.items():
        max_diff = float(np.max(np.abs(run["grads"] - reference["grads"])))
        report["paths"][path] = {
            "cold_seconds": run["cold_seconds"],
            "warm_seconds": run["warm_seconds"],
            "speedup_vs_legacy_warm": (
                reference["warm_seconds"] / run["warm_seconds"]
            ),
            "max_abs_grad_diff_vs_legacy": max_diff,
            "counters": run["counters"],
        }
        rows.append([
            path, run["cold_seconds"], run["warm_seconds"],
            reference["warm_seconds"] / run["warm_seconds"], max_diff,
        ])
    report["batched_speedup_warm"] = (
        reference["warm_seconds"] / runs["batched"]["warm_seconds"]
    )
    with open(OUTPUT_JSON, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2)
    return rows, report


def test_gradient_engine_speedup(benchmark):
    rows, report = benchmark.pedantic(
        run_gradient_experiment, rounds=1, iterations=1
    )
    print_table(
        ["engine", "cold s", "warm s", "speedup vs legacy", "max |grad diff|"],
        rows,
        title=(
            "Batched parameter-shift gradients — one step of the Table V "
            f"4q workload (Santiago, shots=0); full report in {OUTPUT_JSON}"
        ),
    )
    # the engines are pure reorganizations of the same shift-rule sums
    for path, stats in report["paths"].items():
        assert stats["max_abs_grad_diff_vs_legacy"] < 1e-9, (path, stats)
    if not SMOKE:
        assert report["batched_speedup_warm"] >= REQUIRED_BATCHED_SPEEDUP, report


def test_table05_parameter_shift(benchmark):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    print_table(
        ["task", "device", "classically trained acc", "QC-trained acc"],
        rows,
        title="Table V — on-device parameter-shift training",
    )
    for row in rows:
        assert abs(row[2] - row[3]) <= 0.5
