"""Fig. 2 — noise-free vs measured accuracy as the parameter count grows.

More parameters raise the noise-free accuracy but add gates and therefore
noise, so the measured accuracy peaks and then degrades.
"""

from helpers import print_table, small_task, train_model, measured_metrics
from repro.baselines import build_human_circuit
from repro.core import get_design_space
from repro.qml import evaluate_noise_free

PARAM_BUDGETS = [12, 24, 48, 96]


def run_experiment():
    dataset, encoder = small_task("mnist-4")
    space = get_design_space("u3cu3")
    rows = []
    for budget in PARAM_BUDGETS:
        circuit, config = build_human_circuit(space, 4, budget, encoder=encoder)
        model, weights = train_model(circuit, dataset, 4)
        noise_free = evaluate_noise_free(model, weights, dataset.x_test, dataset.y_test)
        measured = measured_metrics(model, weights, dataset, "yorktown",
                                    layout="noise_adaptive")
        rows.append([
            config.num_parameters(space),
            noise_free["accuracy"],
            measured["accuracy"],
            noise_free["accuracy"] - measured["accuracy"],
        ])
    return rows


def test_fig02_params_vs_noise(benchmark):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    print_table(
        ["#params", "noise-free acc", "measured acc", "gap"],
        rows,
        title="Fig. 2 — MNIST-4 noise-free vs measured accuracy (IBMQ-Yorktown)",
    )
    # the noise gap should widen as circuits get bigger
    assert rows[-1][3] >= rows[0][3] - 0.15
