"""Ablation — gradient engines: adjoint (backprop) vs parameter shift vs
finite differences, on accuracy agreement and wall-clock cost.
"""

import time

import numpy as np

from helpers import print_table
from repro.quantum.autodiff import (
    adjoint_gradient,
    finite_difference_gradient,
    parameter_shift_jacobian,
)
from repro.quantum.circuit import ParameterizedCircuit
from repro.quantum.operators import PauliSum
from repro.quantum.statevector import expectation_pauli_sum, run_parameterized

N_QUBITS = 4
N_BLOCKS = 3


def _build_circuit():
    pcirc = ParameterizedCircuit(N_QUBITS)
    for _ in range(N_BLOCKS):
        for qubit in range(N_QUBITS):
            pcirc.add_trainable("u3", (qubit,))
        for qubit in range(N_QUBITS - 1):
            pcirc.add_trainable("rzz", (qubit, qubit + 1))
    return pcirc


def run_experiment():
    pcirc = _build_circuit()
    weights = pcirc.init_weights(np.random.default_rng(0))
    observable = PauliSum.from_terms([(1.0, {q: "Z"}) for q in range(N_QUBITS)])

    def energy(w):
        return float(expectation_pauli_sum(run_parameterized(pcirc, w), observable)[0])

    def expectations_fn(w):
        return expectation_pauli_sum(run_parameterized(pcirc, w), observable)

    start = time.perf_counter()
    adjoint = adjoint_gradient(pcirc, weights, observable=observable)
    adjoint_time = time.perf_counter() - start

    start = time.perf_counter()
    shift = parameter_shift_jacobian(expectations_fn, pcirc, weights)[0]
    shift_time = time.perf_counter() - start

    start = time.perf_counter()
    finite = finite_difference_gradient(energy, weights)
    finite_time = time.perf_counter() - start

    rows = [
        ["adjoint (backprop)", adjoint_time, 0.0],
        ["parameter shift", shift_time, float(np.abs(shift - adjoint).max())],
        ["finite differences", finite_time, float(np.abs(finite - adjoint).max())],
    ]
    return rows, adjoint_time, shift_time


def test_ablation_gradient_modes(benchmark):
    rows, adjoint_time, shift_time = benchmark.pedantic(
        run_experiment, rounds=1, iterations=1
    )
    print_table(
        ["gradient engine", "time for one gradient (s)",
         "max deviation from adjoint"],
        rows,
        title="Ablation — gradient engines (48-parameter U3/RZZ circuit)",
    )
    # all engines agree; adjoint is the cheapest
    assert all(row[2] < 1e-3 for row in rows)
    assert adjoint_time <= shift_time
