"""Fig. 15 — scalability to larger devices/circuits.

MNIST-10 (10 qubits) is searched and evaluated for the 15/16-qubit devices
using the success-rate estimator path (the paper's large-circuit mode), showing
the pipeline scales beyond the density-matrix regime.
"""

import time

from helpers import print_table, train_model
from repro.baselines import build_human_circuit
from repro.execution import ExecutionEngine
from repro.core import (
    EstimatorConfig,
    EvolutionConfig,
    PerformanceEstimator,
    SubCircuitConfig,
    SuperCircuit,
    SuperTrainConfig,
    get_design_space,
    train_supercircuit_qml,
    EvolutionEngine,
)
from repro.devices import QuantumBackend, get_device
from repro.qml import encoder_for_task, evaluate_on_backend, load_task

DEVICES = ["melbourne", "guadalupe"]
TASK = "mnist-10"


def run_experiment():
    dataset = load_task(TASK, n_train=64, n_valid=24, n_test=24)
    encoder = encoder_for_task(TASK)
    space = get_design_space("u3cu3")
    supercircuit = SuperCircuit(space, 10, encoder=encoder, seed=0)
    train_supercircuit_qml(supercircuit, dataset, 10,
                           SuperTrainConfig(steps=20, batch_size=16, seed=0))
    rows = []
    for name in DEVICES:
        device = get_device(name)
        # the same seeded search through both execution-engine modes: results
        # agree to 1e-9, so the batched search is the one carried forward
        searches = {}
        search_times = {}
        for engine_mode in ("sequential", "batched"):
            estimator = PerformanceEstimator(
                device, EstimatorConfig(mode="success_rate", n_valid_samples=8,
                                        engine=engine_mode)
            )
            engine = EvolutionEngine(
                space, 10, device,
                EvolutionConfig(iterations=3, population_size=8, parent_size=3,
                                mutation_size=3, crossover_size=2, seed=0),
            )
            execution = ExecutionEngine(estimator, supercircuit)
            start = time.perf_counter()
            searches[engine_mode] = engine.search(
                population_score_fn=execution.qml_population_scorer(dataset, 10)
            )
            search_times[engine_mode] = time.perf_counter() - start
        # the modes agree to 1e-9 on scores; exact gene equality could flip on
        # sub-tolerance ties under a different BLAS, so pin the score instead
        assert abs(searches["batched"].best_score
                   - searches["sequential"].best_score) < 1e-9
        search = searches["batched"]
        circuit, _ = supercircuit.build_standalone_circuit(search.best.config)
        model, weights = train_model(circuit, dataset, 10, epochs=6)
        backend = QuantumBackend(device, shots=0, seed=0, max_density_qubits=6)
        nas = evaluate_on_backend(model, weights, dataset.x_test, dataset.y_test,
                                  backend, initial_layout=search.best.mapping,
                                  max_samples=8)

        n_params = search.best.config.num_parameters(space)
        human_circuit, _cfg = build_human_circuit(space, 10, n_params,
                                                  encoder=encoder)
        human_model, human_weights = train_model(human_circuit, dataset, 10,
                                                 epochs=6)
        human = evaluate_on_backend(human_model, human_weights, dataset.x_test,
                                    dataset.y_test, backend,
                                    initial_layout="noise_adaptive", max_samples=8)
        rows.append([name, device.n_qubits, n_params, human["accuracy"],
                     nas["accuracy"], search_times["sequential"],
                     search_times["batched"]])
    return rows


def test_fig15_scalability(benchmark):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    print_table(
        ["device", "#qubits", "#params", "human acc", "QuantumNAS acc",
         "search s (sequential)", "search s (batched)"],
        rows,
        title="Fig. 15 — MNIST-10 on larger devices (success-rate estimator)",
    )
    assert all(0.0 <= row[4] <= 1.0 for row in rows)
