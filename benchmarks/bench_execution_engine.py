"""Population-evaluation speed: parametric vs bound-key vs sequential paths.

The workload models the co-search hot path on a 4-qubit task: a 32-candidate
population drawn as 8 SubCircuit genomes x 4 qubit mappings each — the shape
of a mapping-heavy generation (parents re-explored under new mappings, the
Fig. 19 mapping-only search, and late generations where genomes converge).

Three execution paths are compared on cold (empty caches) and warm (second
evaluation of the same population) passes:

* ``sequential`` — the per-candidate seed estimator calls;
* ``bound_key`` — the PR-2 batched engine algorithm
  (``parametric_transpile=False``): every bound validation sample is compiled
  by a full pipeline run, memoized by bound-circuit fingerprint;
* ``parametric`` — this PR's default: each (genome, mapping) structure is
  compiled once into a parametric template and every sample is an O(params)
  angle re-bind.

All three must agree to 1e-9 — the engines are pure reorganizations of the
same numbers.  Every run's timings, transpile-time shares and cache counters
are written to ``BENCH_execution.json`` next to the working directory so CI
can archive them.

``BENCH_SMOKE=1`` shrinks the workload to CI smoke-test size (the speedup
gates are skipped there — timings on shared CI runners are not meaningful).
"""

import json
import os
import time

import numpy as np

from helpers import print_table, small_task
from repro.core import (
    EstimatorConfig,
    EvolutionConfig,
    EvolutionEngine,
    PerformanceEstimator,
    SuperCircuit,
    get_design_space,
)
from repro.core.evolution import Candidate
from repro.devices import get_device
from repro.execution import ExecutionEngine

SMOKE = bool(int(os.environ.get("BENCH_SMOKE", "0")))
N_QUBITS = 4
N_GENOMES = 2 if SMOKE else 8
MAPPINGS_PER_GENOME = 2 if SMOKE else 4
N_VALID_NOISE_SIM = 2 if SMOKE else 8
N_VALID_SUCCESS_RATE = 4 if SMOKE else 16
#: cold-population gates (non-smoke): the parametric path must beat the PR-2
#: bound-key algorithm on the per-sample-transpile-bound noise_sim workload
#: and stay comfortably ahead of the sequential seed path.  (Against PR-2 as
#: *shipped* — before this PR's shared noise-channel/superoperator caching —
#: the same workload measures >= 2x; the in-tree toggle shares those gains,
#: so its floor is set lower to absorb CI timing noise.)
REQUIRED_PARAMETRIC_SPEEDUP = 1.35
REQUIRED_SEQUENTIAL_SPEEDUP = 3.0
OUTPUT_JSON = "BENCH_execution.json"


def build_population(space, device, seed=11):
    evolution = EvolutionEngine(space, N_QUBITS, device, EvolutionConfig(seed=seed))
    genomes = [evolution.random_config() for _ in range(N_GENOMES)]
    return [
        Candidate(genome, evolution.random_mapping())
        for genome in genomes
        for _ in range(MAPPINGS_PER_GENOME)
    ]


def cache_report(estimator, elapsed_cold, path):
    """Transpile-time share and cache counters for one engine run.

    The sequential seed path transpiles directly and never touches the
    estimator-owned caches, so it gets no cache block (and a ``None`` share)
    rather than fabricated zeros; the bound-key path reports only the
    bound-circuit cache it actually uses.
    """
    if path == "sequential":
        return {"transpile_seconds": None, "transpile_share_cold": None}
    bound = estimator.transpile_cache.stats
    parametric = estimator.parametric_transpile_cache.stats
    transpile_seconds = (
        bound.compile_seconds + parametric.compile_seconds + parametric.bind_seconds
    )
    report = {
        "transpile_seconds": transpile_seconds,
        "transpile_share_cold": transpile_seconds / elapsed_cold if elapsed_cold else 0.0,
        "bound_cache": {
            "hits": bound.hits,
            "misses": bound.misses,
            "hit_rate": bound.hit_rate,
            "compile_seconds": bound.compile_seconds,
        },
    }
    if path == "parametric":
        report["parametric_cache"] = {
            "structure_hits": parametric.structure_hits,
            "structure_misses": parametric.structure_misses,
            "structure_hit_rate": parametric.structure_hit_rate,
            "bind_hits": parametric.bind_hits,
            "bind_misses": parametric.bind_misses,
            "bind_hit_rate": parametric.bind_hit_rate,
            "variants_compiled": parametric.variants_compiled,
            "fallbacks": parametric.fallbacks,
            "fallback_rate": parametric.fallback_rate,
            "compile_seconds": parametric.compile_seconds,
            "bind_seconds": parametric.bind_seconds,
        }
    return report


def evaluate(path, mode, n_valid, supercircuit, device, candidates, dataset,
             n_classes):
    """One engine path: cold pass, warm pass, scores and cache counters."""
    engine_mode = "sequential" if path == "sequential" else "batched"
    estimator = PerformanceEstimator(
        device,
        EstimatorConfig(
            mode=mode,
            n_valid_samples=n_valid,
            engine=engine_mode,
            parametric_transpile=(path == "parametric"),
        ),
    )
    engine = ExecutionEngine(estimator, supercircuit)
    start = time.perf_counter()
    scores = engine.evaluate_qml_population(candidates, dataset, n_classes)
    cold = time.perf_counter() - start
    start = time.perf_counter()
    engine.evaluate_qml_population(candidates, dataset, n_classes)
    warm = time.perf_counter() - start
    return {
        "scores": np.array(scores),
        "cold_seconds": cold,
        "warm_seconds": warm,
        "caches": cache_report(estimator, cold, path),
    }


def run_experiment():
    dataset, encoder = small_task("mnist-4")
    space = get_design_space("u3cu3")
    device = get_device("yorktown")
    supercircuit = SuperCircuit(space, N_QUBITS, encoder=encoder, seed=3)
    candidates = build_population(space, device)

    rows = []
    report = {
        "workload": {
            "n_qubits": N_QUBITS,
            "candidates": len(candidates),
            "genomes": N_GENOMES,
            "mappings_per_genome": MAPPINGS_PER_GENOME,
            "device": device.name,
            "smoke": SMOKE,
        },
        "modes": {},
    }
    for mode, n_valid in (("noise_sim", N_VALID_NOISE_SIM),
                          ("success_rate", N_VALID_SUCCESS_RATE)):
        runs = {
            path: evaluate(path, mode, n_valid, supercircuit, device,
                           candidates, dataset, dataset.n_classes)
            for path in ("sequential", "bound_key", "parametric")
        }
        reference = runs["sequential"]["scores"]
        mode_report = {"n_valid_samples": n_valid, "paths": {}}
        for path, run in runs.items():
            max_diff = float(np.max(np.abs(run["scores"] - reference)))
            mode_report["paths"][path] = {
                "cold_seconds": run["cold_seconds"],
                "warm_seconds": run["warm_seconds"],
                "max_abs_diff_vs_sequential": max_diff,
                **run["caches"],
            }
            share = run["caches"]["transpile_share_cold"]
            rows.append([
                mode, path, n_valid,
                run["cold_seconds"], run["warm_seconds"],
                runs["sequential"]["cold_seconds"] / run["cold_seconds"],
                "n/a" if share is None else share,
                max_diff,
            ])
        mode_report["parametric_vs_bound_key_cold"] = (
            runs["bound_key"]["cold_seconds"] / runs["parametric"]["cold_seconds"]
        )
        mode_report["parametric_vs_sequential_cold"] = (
            runs["sequential"]["cold_seconds"] / runs["parametric"]["cold_seconds"]
        )
        # steady-state view: a warm parametric generation vs one fresh
        # sequential population pass (the cost a non-batched search would
        # keep paying every generation) and vs a warm sequential pass
        mode_report["sequential_cold_vs_parametric_warm"] = (
            runs["sequential"]["cold_seconds"] / runs["parametric"]["warm_seconds"]
        )
        mode_report["parametric_vs_sequential_warm"] = (
            runs["sequential"]["warm_seconds"] / runs["parametric"]["warm_seconds"]
        )
        report["modes"][mode] = mode_report

    with open(OUTPUT_JSON, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2)
    return rows, report


def test_execution_engine_speedup(benchmark):
    rows, report = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    print_table(
        ["estimator mode", "path", "valid samples", "cold s", "warm s",
         "speedup vs seq", "transpile share", "max |diff|"],
        rows,
        title=(
            f"Execution engine — population evaluation "
            f"({N_QUBITS} qubits, {N_GENOMES * MAPPINGS_PER_GENOME} candidates, "
            f"Yorktown); full report in {OUTPUT_JSON}"
        ),
    )
    # the engines must be pure reorganizations of the same numbers
    for mode, mode_report in report["modes"].items():
        for path, stats in mode_report["paths"].items():
            assert stats["max_abs_diff_vs_sequential"] < 1e-9, (mode, path, stats)
    if not SMOKE:
        noise_sim = report["modes"]["noise_sim"]
        success_rate = report["modes"]["success_rate"]
        # the acceptance gates: the parametric path wins the per-sample
        # transpile-bound noise_sim workload cold...
        assert (
            noise_sim["parametric_vs_bound_key_cold"]
            >= REQUIRED_PARAMETRIC_SPEEDUP
        ), noise_sim
        assert (
            noise_sim["parametric_vs_sequential_cold"]
            >= REQUIRED_SEQUENTIAL_SPEEDUP
        ), noise_sim
        # ...and success_rate mode must not regress cold and win big in the
        # steady state (warm caches vs a fresh sequential population pass)
        assert success_rate["parametric_vs_bound_key_cold"] > 0.7, success_rate
        assert success_rate["sequential_cold_vs_parametric_warm"] > 3.0, success_rate
