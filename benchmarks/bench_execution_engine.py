"""Population-evaluation speed: batched execution engine vs sequential estimator.

The workload models the co-search hot path on a 4-qubit task: a 32-candidate
population drawn as 8 SubCircuit genomes x 4 qubit mappings each — the shape
of a mapping-heavy generation (parents re-explored under new mappings, the
Fig. 19 mapping-only search, and late generations where genomes converge).

Both estimator modes are measured and pinned for equivalence; the >= 3x
speedup gate applies to the ``noise_sim`` workload, where the batched
density-matrix runner replaces per-sample simulation.  A second (warm) pass
reports the steady-state regime where the transpile/structure caches are hot,
as seen by later generations re-evaluating surviving candidates.

``BENCH_SMOKE=1`` shrinks the workload to CI smoke-test size (the speedup
gate is skipped there — timings on shared CI runners are not meaningful).
"""

import os
import time

import numpy as np

from helpers import print_table, small_task
from repro.core import (
    EstimatorConfig,
    EvolutionConfig,
    EvolutionEngine,
    PerformanceEstimator,
    SuperCircuit,
    get_design_space,
)
from repro.core.evolution import Candidate
from repro.devices import get_device
from repro.execution import ExecutionEngine

SMOKE = bool(int(os.environ.get("BENCH_SMOKE", "0")))
N_QUBITS = 4
N_GENOMES = 2 if SMOKE else 8
MAPPINGS_PER_GENOME = 2 if SMOKE else 4
N_VALID_NOISE_SIM = 2 if SMOKE else 8
N_VALID_SUCCESS_RATE = 4 if SMOKE else 16
REQUIRED_SPEEDUP = 3.0


def build_population(space, device, seed=11):
    evolution = EvolutionEngine(space, N_QUBITS, device, EvolutionConfig(seed=seed))
    genomes = [evolution.random_config() for _ in range(N_GENOMES)]
    return [
        Candidate(genome, evolution.random_mapping())
        for genome in genomes
        for _ in range(MAPPINGS_PER_GENOME)
    ]


def evaluate(engine_mode, mode, n_valid, supercircuit, device, candidates,
             dataset, n_classes, repeat_warm=False):
    estimator = PerformanceEstimator(
        device,
        EstimatorConfig(mode=mode, n_valid_samples=n_valid, engine=engine_mode),
    )
    engine = ExecutionEngine(estimator, supercircuit)
    start = time.perf_counter()
    scores = engine.evaluate_qml_population(candidates, dataset, n_classes)
    elapsed = time.perf_counter() - start
    warm_elapsed = None
    if repeat_warm:
        start = time.perf_counter()
        engine.evaluate_qml_population(candidates, dataset, n_classes)
        warm_elapsed = time.perf_counter() - start
    return np.array(scores), elapsed, warm_elapsed


def run_experiment():
    dataset, encoder = small_task("mnist-4")
    space = get_design_space("u3cu3")
    device = get_device("yorktown")
    supercircuit = SuperCircuit(space, N_QUBITS, encoder=encoder, seed=3)
    candidates = build_population(space, device)

    rows = []
    results = {}
    for mode, n_valid in (("noise_sim", N_VALID_NOISE_SIM),
                          ("success_rate", N_VALID_SUCCESS_RATE)):
        seq_scores, seq_time, _ = evaluate(
            "sequential", mode, n_valid, supercircuit, device, candidates,
            dataset, dataset.n_classes,
        )
        bat_scores, bat_time, warm_time = evaluate(
            "batched", mode, n_valid, supercircuit, device, candidates,
            dataset, dataset.n_classes, repeat_warm=True,
        )
        max_diff = float(np.max(np.abs(seq_scores - bat_scores)))
        results[mode] = {
            "speedup": seq_time / bat_time,
            "warm_speedup": seq_time / warm_time,
            "max_diff": max_diff,
        }
        rows.append([
            mode, len(candidates), n_valid,
            seq_time, bat_time, seq_time / bat_time,
            seq_time / warm_time, max_diff,
        ])
    return rows, results


def test_execution_engine_speedup(benchmark):
    rows, results = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    print_table(
        ["estimator mode", "candidates", "valid samples", "sequential s",
         "batched s", "speedup", "warm speedup", "max |diff|"],
        rows,
        title=(
            f"Execution engine — population evaluation "
            f"({N_QUBITS} qubits, {N_GENOMES * MAPPINGS_PER_GENOME} candidates, "
            f"Yorktown)"
        ),
    )
    # the engine must be a pure reorganization of the same numbers
    for mode, result in results.items():
        assert result["max_diff"] < 1e-9, (mode, result)
    if not SMOKE:
        # the acceptance gate: >= 3x on the noise_sim population workload
        assert results["noise_sim"]["speedup"] >= REQUIRED_SPEEDUP, results
        # success_rate must at least not regress cold and win big warm
        assert results["success_rate"]["speedup"] > 0.9, results
        assert results["success_rate"]["warm_speedup"] > 3.0, results
