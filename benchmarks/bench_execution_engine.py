"""Population-evaluation speed: sharded vs parametric vs bound-key vs sequential.

The workload models the co-search hot path on a 4-qubit task: a 32-candidate
population drawn as 8 SubCircuit genomes x 4 qubit mappings each — the shape
of a mapping-heavy generation (parents re-explored under new mappings, the
Fig. 19 mapping-only search, and late generations where genomes converge).

Five execution paths are compared on cold (empty caches) and warm (second
evaluation of the same population) passes:

* ``sequential`` — the per-candidate seed estimator calls;
* ``bound_key`` — the PR-2 batched engine algorithm
  (``parametric_transpile=False``): every bound validation sample is compiled
  by a full pipeline run, memoized by bound-circuit fingerprint;
* ``parametric`` — the PR-3 default: each (genome, mapping) structure is
  compiled once into a parametric template and every sample is an O(params)
  angle re-bind;
* ``sharded_w1`` / ``sharded_w4`` — this PR's
  :class:`~repro.execution.scheduler.ShardedExecutionEngine` at 1 and 4
  worker processes.  ``w1`` runs the same group-at-a-time algorithm
  in-process (the scheduler's degradation target); ``w4`` fans the structure
  groups out across a pinned process pool.  The pool is started *before*
  timing (``warm_up``), so the cold column measures population evaluation,
  not fork/exec.

All paths must agree to 1e-9 — the engines are pure reorganizations of the
same numbers.  Every run additionally reports its per-backend counters
(``repro.backends`` dispatch: density batches, vectorized template batches,
statevector forwards, shot circuits), and a sixth measurement runs the
``noise_sim`` workload through the pinned-seed shot-sampler backend
(``backend="shots"``) — its scores are shot-sampled, so it is reported for
timing only, outside the 1e-9 equivalence assertion.  Every run's timings,
transpile-time shares, per-shard worker reports and cache counters are
written to ``BENCH_execution.json`` next to the working directory so CI can
archive them.

The dispatch gate: success_rate populations — whose per-group dispatch
routes every simulation to the cheap statevector backend — must beat the
density-only (noise_sim) path by >= 1.3x per simulated circuit.  Both modes
run the same candidates; the per-circuit normalization accounts for their
different validation-sample counts.

``BENCH_SMOKE=1`` shrinks the workload to CI smoke-test size (the speedup
gates are skipped there — timings on shared CI runners are not meaningful).
The sharded gate additionally requires >= ``SHARDED_WORKERS`` physical cores:
four processes cannot beat one on a single-core host, and a timing "gate"
that cannot fail honestly there would only fail noisily.

A telemetry measurement (``test_telemetry_overhead``) re-runs the warm
``noise_sim`` parametric workload with tracing off and on
(best-of-``TELEMETRY_OVERHEAD_REPEATS`` each), asserts the scores are
bitwise identical, gates the traced/untraced warm ratio at
``REQUIRED_TRACING_OVERHEAD`` (skipped in smoke mode, like every timing
gate), and writes a ``telemetry`` section with the per-phase breakdown —
transpile/bind seconds from the cache stats plus the
schedule/simulate/score split from the ``engine_phase_seconds`` histogram.

A second measurement (``test_service_multiplexing``) runs two full co-search
tenants through :class:`repro.service.CoSearchService` — once each on a
private service, then both multiplexed on one shared worker pool — and
reports the multiplexed wall time against the sum of the solo walls in a
``service`` section of the same JSON report.  Multiplexing is only useful if
it does not change the science, so the benchmark asserts each tenant's
search history is bitwise identical across the two arrangements; the timing
ratio itself is reported without a gate (interleaving two searches on one
pool trades per-job latency for shared capacity by design).
"""

import json
import os
import time

import numpy as np

from helpers import print_table, small_task
from repro.core import (
    EstimatorConfig,
    EvolutionConfig,
    EvolutionEngine,
    PerformanceEstimator,
    SuperCircuit,
    get_design_space,
)
from repro.core.evolution import Candidate
from repro.devices import get_device
from repro.execution import ExecutionEngine, ShardedExecutionEngine
from repro.service import CoSearchService, SearchJob

SMOKE = bool(int(os.environ.get("BENCH_SMOKE", "0")))
N_QUBITS = 4
N_GENOMES = 2 if SMOKE else 8
MAPPINGS_PER_GENOME = 2 if SMOKE else 4
N_VALID_NOISE_SIM = 2 if SMOKE else 8
N_VALID_SUCCESS_RATE = 4 if SMOKE else 16
#: cold-population gates (non-smoke): the parametric path must beat the PR-2
#: bound-key algorithm on the per-sample-transpile-bound noise_sim workload
#: and stay comfortably ahead of the sequential seed path.  (Against PR-2 as
#: *shipped* — before this PR's shared noise-channel/superoperator caching —
#: the same workload measures >= 2x; the in-tree toggle shares those gains,
#: so its floor is set lower to absorb CI timing noise.)
REQUIRED_PARAMETRIC_SPEEDUP = 1.35
REQUIRED_SEQUENTIAL_SPEEDUP = 3.0
#: the sharded acceptance gate: 4 workers must beat 1 worker cold by 1.5x on
#: the noise_sim workload — enforced only where 4 processes can actually run
#: in parallel (see the module docstring)
SHARDED_WORKERS = 4
REQUIRED_SHARDED_SPEEDUP = 1.5
SHARDED_GATE_ENFORCED = not SMOKE and (os.cpu_count() or 1) >= SHARDED_WORKERS
#: dispatched success_rate populations (statevector backend) must beat the
#: density-only noise_sim path per simulated circuit
REQUIRED_DISPATCH_SPEEDUP = 1.3
#: ExecutionStats fields reported as the per-backend cold/warm columns
BACKEND_COUNTER_FIELDS = (
    "density_batches", "density_circuits", "template_batches",
    "statevector_batches", "shot_circuits", "fused_segments",
)
PATHS = ("sequential", "bound_key", "parametric", "sharded_w1",
         f"sharded_w{SHARDED_WORKERS}")
OUTPUT_JSON = "BENCH_execution.json"
#: tracing must be effectively free on the hot path: the traced warm
#: noise_sim pass may cost at most 5% over the untraced one (best-of-N
#: against best-of-N, so scheduler noise does not fail the gate spuriously)
REQUIRED_TRACING_OVERHEAD = 1.05
TELEMETRY_OVERHEAD_REPEATS = 3
#: the multi-tenant service workload: two co-search tenants multiplexed on
#: one shared pool vs each tenant on a private service
SERVICE_WORKERS = 2
SERVICE_ITERATIONS = 2 if SMOKE else 4
SERVICE_POPULATION = 6 if SMOKE else 12


def build_population(space, device, seed=11):
    evolution = EvolutionEngine(space, N_QUBITS, device, EvolutionConfig(seed=seed))
    genomes = [evolution.random_config() for _ in range(N_GENOMES)]
    return [
        Candidate(genome, evolution.random_mapping())
        for genome in genomes
        for _ in range(MAPPINGS_PER_GENOME)
    ]


def cache_report(estimator, elapsed_cold, path):
    """Transpile-time share and cache counters for one engine run.

    The sequential seed path transpiles directly and never touches the
    estimator-owned caches, so it gets no cache block (and a ``None`` share)
    rather than fabricated zeros; the bound-key path reports only the
    bound-circuit cache it actually uses.  Sharded paths report the merged
    worker counters (the scheduler folds every shard's deltas into these
    estimator-owned stats).
    """
    if path == "sequential":
        return {"transpile_seconds": None, "transpile_share_cold": None}
    bound = estimator.transpile_cache.stats
    parametric = estimator.parametric_transpile_cache.stats
    transpile_seconds = (
        bound.compile_seconds + parametric.compile_seconds + parametric.bind_seconds
    )
    report = {
        "transpile_seconds": transpile_seconds,
        "transpile_share_cold": transpile_seconds / elapsed_cold if elapsed_cold else 0.0,
        "bound_cache": {
            "hits": bound.hits,
            "misses": bound.misses,
            "hit_rate": bound.hit_rate,
            "compile_seconds": bound.compile_seconds,
        },
    }
    if path == "parametric" or path.startswith("sharded"):
        report["parametric_cache"] = {
            "structure_hits": parametric.structure_hits,
            "structure_misses": parametric.structure_misses,
            "structure_hit_rate": parametric.structure_hit_rate,
            "bind_hits": parametric.bind_hits,
            "bind_misses": parametric.bind_misses,
            "bind_hit_rate": parametric.bind_hit_rate,
            "variants_compiled": parametric.variants_compiled,
            "fallbacks": parametric.fallbacks,
            "fallback_rate": parametric.fallback_rate,
            "compile_seconds": parametric.compile_seconds,
            "bind_seconds": parametric.bind_seconds,
        }
    return report


def shard_report(engine, elapsed):
    """Per-worker shard reports for one sharded generation.

    ``transpile_share`` is each worker's own compile+bind time over its wall
    time — the per-worker view of how transpile-bound the shard was.
    """
    return {
        "effective_shards": len(engine.last_shard_reports),
        "per_worker": [
            {
                **report,
                "transpile_share": (
                    report["transpile_seconds"] / report["elapsed_seconds"]
                    if report["elapsed_seconds"]
                    else 0.0
                ),
            }
            for report in engine.last_shard_reports
        ],
        "scheduler": {
            "generations": engine.scheduler_stats.generations,
            "sharded_generations": engine.scheduler_stats.sharded_generations,
            "degraded_generations": engine.scheduler_stats.degraded_generations,
            "shards_dispatched": engine.scheduler_stats.shards_dispatched,
            "adopted_bound_entries": engine.scheduler_stats.adopted_bound_entries,
            "adopted_structures": engine.scheduler_stats.adopted_structures,
            # resilience counters (repro.execution.resilience): all zero in
            # a healthy run — nonzero values flag infrastructure trouble
            "worker_failures": engine.scheduler_stats.worker_failures,
            "retried_shards": engine.scheduler_stats.retried_shards,
            "rebalanced_shards": engine.scheduler_stats.rebalanced_shards,
            "respawned_pools": engine.scheduler_stats.respawned_pools,
            "deadline_timeouts": engine.scheduler_stats.deadline_timeouts,
            "flaky_recoveries": engine.scheduler_stats.flaky_recoveries,
            "watchdog_wait_seconds": engine.scheduler_stats.watchdog_wait_seconds,
        },
        "parallel_efficiency": (
            sum(r["elapsed_seconds"] for r in engine.last_shard_reports) / elapsed
            if elapsed and engine.last_shard_reports
            else None
        ),
    }


def evaluate(path, mode, n_valid, supercircuit, device, candidates, dataset,
             n_classes, backend=None):
    """One engine path: cold pass, warm pass, scores and cache counters."""
    engine_mode = "sequential" if path == "sequential" else "batched"
    workers = int(path.split("_w")[1]) if path.startswith("sharded") else 1
    estimator = PerformanceEstimator(
        device,
        EstimatorConfig(
            mode=mode,
            n_valid_samples=n_valid,
            engine=engine_mode,
            parametric_transpile=(path != "bound_key" and path != "sequential"),
            workers=workers,
            # shard even the smoke workload's 2-genome population
            shard_min_group_size=1,
            backend=backend,
        ),
    )
    if path.startswith("sharded"):
        engine = ShardedExecutionEngine(estimator, supercircuit)
    else:
        engine = ExecutionEngine(estimator, supercircuit)
    try:
        if path.startswith("sharded"):
            # start the pool outside the timed region: the cold column
            # measures population evaluation, not fork/exec + worker setup
            engine.warm_up()
        start = time.perf_counter()
        scores = engine.evaluate_qml_population(candidates, dataset, n_classes)
        cold = time.perf_counter() - start
        shards_cold = (
            shard_report(engine, cold) if path.startswith("sharded") else None
        )
        start = time.perf_counter()
        engine.evaluate_qml_population(candidates, dataset, n_classes)
        warm = time.perf_counter() - start
        stats = engine.stats.to_dict()
        result = {
            "scores": np.array(scores),
            "cold_seconds": cold,
            "warm_seconds": warm,
            "caches": cache_report(estimator, cold, path),
            "backend_counters": {
                field: stats.get(field, 0) for field in BACKEND_COUNTER_FIELDS
            },
        }
        if path.startswith("sharded"):
            result["shards_cold"] = shards_cold
            result["shards_warm"] = shard_report(engine, warm)
        return result
    finally:
        engine.close()


def run_experiment():
    dataset, encoder = small_task("mnist-4")
    space = get_design_space("u3cu3")
    device = get_device("yorktown")
    supercircuit = SuperCircuit(space, N_QUBITS, encoder=encoder, seed=3)
    candidates = build_population(space, device)

    rows = []
    report = {
        "workload": {
            "n_qubits": N_QUBITS,
            "candidates": len(candidates),
            "genomes": N_GENOMES,
            "mappings_per_genome": MAPPINGS_PER_GENOME,
            "device": device.name,
            "smoke": SMOKE,
            "cpu_count": os.cpu_count(),
            "sharded_workers": SHARDED_WORKERS,
            "sharded_gate_enforced": SHARDED_GATE_ENFORCED,
        },
        "modes": {},
    }
    sharded_w = f"sharded_w{SHARDED_WORKERS}"
    for mode, n_valid in (("noise_sim", N_VALID_NOISE_SIM),
                          ("success_rate", N_VALID_SUCCESS_RATE)):
        runs = {
            path: evaluate(path, mode, n_valid, supercircuit, device,
                           candidates, dataset, dataset.n_classes)
            for path in PATHS
        }
        reference = runs["sequential"]["scores"]
        mode_report = {"n_valid_samples": n_valid, "paths": {}}
        for path, run in runs.items():
            max_diff = float(np.max(np.abs(run["scores"] - reference)))
            mode_report["paths"][path] = {
                "cold_seconds": run["cold_seconds"],
                "warm_seconds": run["warm_seconds"],
                "max_abs_diff_vs_sequential": max_diff,
                "backend_counters": run["backend_counters"],
                **run["caches"],
            }
            if "shards_cold" in run:
                mode_report["paths"][path]["shards_cold"] = run["shards_cold"]
                mode_report["paths"][path]["shards_warm"] = run["shards_warm"]
            share = run["caches"]["transpile_share_cold"]
            rows.append([
                mode, path, n_valid,
                run["cold_seconds"], run["warm_seconds"],
                runs["sequential"]["cold_seconds"] / run["cold_seconds"],
                "n/a" if share is None else share,
                max_diff,
            ])
        mode_report["parametric_vs_bound_key_cold"] = (
            runs["bound_key"]["cold_seconds"] / runs["parametric"]["cold_seconds"]
        )
        mode_report["parametric_vs_sequential_cold"] = (
            runs["sequential"]["cold_seconds"] / runs["parametric"]["cold_seconds"]
        )
        mode_report["sharded_vs_w1_cold"] = (
            runs["sharded_w1"]["cold_seconds"] / runs[sharded_w]["cold_seconds"]
        )
        mode_report["sharded_vs_sequential_cold"] = (
            runs["sequential"]["cold_seconds"] / runs[sharded_w]["cold_seconds"]
        )
        # steady-state view: a warm parametric generation vs one fresh
        # sequential population pass (the cost a non-batched search would
        # keep paying every generation) and vs a warm sequential pass
        mode_report["sequential_cold_vs_parametric_warm"] = (
            runs["sequential"]["cold_seconds"] / runs["parametric"]["warm_seconds"]
        )
        mode_report["parametric_vs_sequential_warm"] = (
            runs["sequential"]["warm_seconds"] / runs["parametric"]["warm_seconds"]
        )
        report["modes"][mode] = mode_report

        if mode == "noise_sim":
            # the shot-sampler backend column: the same population through
            # the pinned-seed real-QC path — timing only, its scores are
            # shot-sampled by design and stay outside the 1e-9 assertion
            shot_run = evaluate(
                "parametric", mode, n_valid, supercircuit, device,
                candidates, dataset, dataset.n_classes, backend="shots",
            )
            mode_report["shot_backend"] = {
                "cold_seconds": shot_run["cold_seconds"],
                "warm_seconds": shot_run["warm_seconds"],
                "backend_counters": shot_run["backend_counters"],
            }
            rows.append([
                mode, "shots_backend", n_valid,
                shot_run["cold_seconds"], shot_run["warm_seconds"],
                runs["sequential"]["cold_seconds"] / shot_run["cold_seconds"],
                "n/a", "shot-sampled",
            ])

    # per-circuit dispatch gate: success_rate populations route every
    # simulation to the statevector backend; normalize by simulated-circuit
    # count because the two modes score different validation-sample counts
    n_candidates = len(candidates)
    noise_sim_per_circuit = (
        report["modes"]["noise_sim"]["paths"]["parametric"]["cold_seconds"]
        / (n_candidates * N_VALID_NOISE_SIM)
    )
    success_rate_per_circuit = (
        report["modes"]["success_rate"]["paths"]["parametric"]["cold_seconds"]
        / (n_candidates * N_VALID_SUCCESS_RATE)
    )
    report["backend_dispatch"] = {
        "noise_sim_cold_per_circuit": noise_sim_per_circuit,
        "success_rate_cold_per_circuit": success_rate_per_circuit,
        "dispatched_success_rate_speedup": (
            noise_sim_per_circuit / success_rate_per_circuit
        ),
        "required_speedup": REQUIRED_DISPATCH_SPEEDUP,
    }

    with open(OUTPUT_JSON, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2)
    return rows, report


def test_execution_engine_speedup(benchmark):
    rows, report = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    print_table(
        ["estimator mode", "path", "valid samples", "cold s", "warm s",
         "speedup vs seq", "transpile share", "max |diff|"],
        rows,
        title=(
            f"Execution engine — population evaluation "
            f"({N_QUBITS} qubits, {N_GENOMES * MAPPINGS_PER_GENOME} candidates, "
            f"Yorktown); full report in {OUTPUT_JSON}"
        ),
    )
    # the engines must be pure reorganizations of the same numbers
    for mode, mode_report in report["modes"].items():
        for path, stats in mode_report["paths"].items():
            assert stats["max_abs_diff_vs_sequential"] < 1e-9, (mode, path, stats)
    if not SMOKE:
        noise_sim = report["modes"]["noise_sim"]
        success_rate = report["modes"]["success_rate"]
        # the acceptance gates: the parametric path wins the per-sample
        # transpile-bound noise_sim workload cold...
        assert (
            noise_sim["parametric_vs_bound_key_cold"]
            >= REQUIRED_PARAMETRIC_SPEEDUP
        ), noise_sim
        assert (
            noise_sim["parametric_vs_sequential_cold"]
            >= REQUIRED_SEQUENTIAL_SPEEDUP
        ), noise_sim
        # ...and success_rate mode must not regress cold and win big in the
        # steady state (warm caches vs a fresh sequential population pass)
        assert success_rate["parametric_vs_bound_key_cold"] > 0.7, success_rate
        assert success_rate["sequential_cold_vs_parametric_warm"] > 3.0, success_rate
        # the backend-dispatch gate: statevector-dispatched success_rate
        # populations beat the density-only path per simulated circuit
        assert (
            report["backend_dispatch"]["dispatched_success_rate_speedup"]
            >= REQUIRED_DISPATCH_SPEEDUP
        ), report["backend_dispatch"]
    if SHARDED_GATE_ENFORCED:
        # the sharding acceptance gate: 4 workers beat 1 on the cold
        # noise_sim workload (only meaningful with >= 4 physical cores)
        noise_sim = report["modes"]["noise_sim"]
        assert noise_sim["sharded_vs_w1_cold"] >= REQUIRED_SHARDED_SPEEDUP, noise_sim


def run_telemetry_experiment():
    """Tracing overhead + per-phase breakdown on the warm noise_sim path."""
    from repro import telemetry

    dataset, encoder = small_task("mnist-4")
    space = get_design_space("u3cu3")
    device = get_device("yorktown")
    supercircuit = SuperCircuit(space, N_QUBITS, encoder=encoder, seed=3)
    candidates = build_population(space, device)

    estimator = PerformanceEstimator(
        device,
        EstimatorConfig(mode="noise_sim", n_valid_samples=N_VALID_NOISE_SIM),
    )
    engine = ExecutionEngine(estimator, supercircuit)
    tracer = telemetry.get_tracer()
    saved_enabled, saved_writer = tracer.enabled, tracer.writer

    def warm_pass():
        start = time.perf_counter()
        scores = engine.evaluate_qml_population(
            candidates, dataset, dataset.n_classes
        )
        return time.perf_counter() - start, np.array(scores)

    try:
        tracer.enabled, tracer.writer = False, None
        # warm every cache before any timed pass
        engine.evaluate_qml_population(candidates, dataset, dataset.n_classes)
        untraced = [warm_pass() for _ in range(TELEMETRY_OVERHEAD_REPEATS)]
        telemetry.reset()
        tracer.enabled = True
        traced = [warm_pass() for _ in range(TELEMETRY_OVERHEAD_REPEATS)]
        phase_hist = (
            telemetry.get_metrics()
            .snapshot()["histograms"]
            .get("engine_phase_seconds", {})
        )
        span_count = len(tracer.records)
    finally:
        tracer.enabled, tracer.writer = saved_enabled, saved_writer
        telemetry.reset()
        engine.close()

    # tracing must never change a number, not even by an ulp
    reference = untraced[0][1]
    for _, scores in untraced + traced:
        assert np.array_equal(scores, reference), "tracing changed scores!"

    bound = estimator.transpile_cache.stats
    parametric = estimator.parametric_transpile_cache.stats
    section = {
        "workload": "warm noise_sim population, parametric in-process path",
        "repeats": TELEMETRY_OVERHEAD_REPEATS,
        "untraced_warm_seconds": min(t for t, _ in untraced),
        "traced_warm_seconds": min(t for t, _ in traced),
        "spans_per_traced_pass": span_count // TELEMETRY_OVERHEAD_REPEATS,
        "required_max_overhead": REQUIRED_TRACING_OVERHEAD,
        "gate_enforced": not SMOKE,
        "phases": {
            # compile/bind time accumulated by the caches across the whole
            # run (cold warm-up included — warm passes compile nothing)
            "transpile_compile_seconds": (
                bound.compile_seconds + parametric.compile_seconds
            ),
            "bind_seconds": parametric.bind_seconds,
            # the engine's schedule/simulate/score split, observed by the
            # engine_phase_seconds histogram over the traced warm passes
            **{
                labels.partition("=")[2]: stats
                for labels, stats in sorted(phase_hist.items())
            },
        },
    }
    section["tracing_overhead"] = (
        section["traced_warm_seconds"] / section["untraced_warm_seconds"]
        if section["untraced_warm_seconds"]
        else None
    )
    try:
        with open(OUTPUT_JSON, "r", encoding="utf-8") as handle:
            report = json.load(handle)
    except (OSError, json.JSONDecodeError):
        report = {}
    report["telemetry"] = section
    with open(OUTPUT_JSON, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2)
    return section


def test_telemetry_overhead(benchmark):
    section = benchmark.pedantic(
        run_telemetry_experiment, rounds=1, iterations=1
    )
    phases = section["phases"]
    rows = [
        ["transpile (compile)", "-", phases["transpile_compile_seconds"]],
        ["bind", "-", phases["bind_seconds"]],
    ]
    for phase in ("schedule", "simulate", "score"):
        stats = phases.get(phase)
        if stats:
            rows.append([phase, stats["count"], stats["sum"]])
    rows.append([
        "warm pass (untraced)", "-", section["untraced_warm_seconds"],
    ])
    rows.append([
        f"warm pass (traced, {section['spans_per_traced_pass']} spans)",
        "-", section["traced_warm_seconds"],
    ])
    print_table(
        ["phase", "observations", "seconds"],
        rows,
        title=(
            f"Telemetry — per-phase breakdown + tracing overhead "
            f"(x{section['tracing_overhead']:.3f}); "
            f"telemetry section in {OUTPUT_JSON}"
        ),
    )
    # the engine phases were actually observed while traced
    assert phases.get("simulate", {}).get("count", 0) > 0, phases
    if not SMOKE:
        assert section["tracing_overhead"] <= REQUIRED_TRACING_OVERHEAD, section


def service_job(name, dataset, encoder, seed):
    """One full co-search tenant for the multi-tenant service workload."""
    return SearchJob(
        name=name,
        kind="qml",
        space="u3cu3",
        device="yorktown",
        n_qubits=N_QUBITS,
        evolution=EvolutionConfig(
            iterations=SERVICE_ITERATIONS, population_size=SERVICE_POPULATION,
            parent_size=3, mutation_size=3, crossover_size=2, seed=seed,
        ),
        estimator=EstimatorConfig(
            mode="success_rate", n_valid_samples=N_VALID_SUCCESS_RATE,
            shard_min_group_size=1,
        ),
        dataset=dataset,
        n_classes=dataset.n_classes,
        encoder=encoder,
        seed=3,
    )


def run_service_experiment():
    """Two tenants solo vs multiplexed on one shared service pool."""
    dataset, encoder = small_task("mnist-4")
    seeds = {"tenant-a": 11, "tenant-b": 23}

    solo_results, solo_seconds = {}, {}
    for name, seed in seeds.items():
        start = time.perf_counter()
        with CoSearchService(max_workers=SERVICE_WORKERS,
                             max_concurrent_jobs=1) as service:
            service.submit(service_job(name, dataset, encoder, seed))
            solo_results.update(service.run())
        solo_seconds[name] = time.perf_counter() - start

    start = time.perf_counter()
    with CoSearchService(max_workers=SERVICE_WORKERS,
                         max_concurrent_jobs=2) as shared:
        for name, seed in seeds.items():
            shared.submit(service_job(name, dataset, encoder, seed))
        shared_results = shared.run()
        stats = {name: shared.tenant_stats[name] for name in seeds}
    multiplexed_seconds = time.perf_counter() - start

    solo_total = sum(solo_seconds.values())
    section = {
        "workers": SERVICE_WORKERS,
        "iterations": SERVICE_ITERATIONS,
        "population_size": SERVICE_POPULATION,
        "tenants": {
            name: {
                "solo_seconds": solo_seconds[name],
                "generations": stats[name].generations,
                "candidates": stats[name].candidates,
                "cache_hits": stats[name].cache_hits,
                "cache_misses": stats[name].cache_misses,
                "simulator_seconds": stats[name].simulator_seconds,
                "bitwise_identical_to_solo": (
                    shared_results[name].history == solo_results[name].history
                    and shared_results[name].best_score
                    == solo_results[name].best_score
                ),
            }
            for name in sorted(seeds)
        },
        "solo_total_seconds": solo_total,
        "multiplexed_seconds": multiplexed_seconds,
        "multiplexed_vs_solo_total": (
            solo_total / multiplexed_seconds if multiplexed_seconds else None
        ),
    }
    # fold the section into the report the engine benchmark wrote (pytest
    # runs this file's tests in order, so the file normally exists already;
    # a standalone run of just this test starts a fresh report)
    try:
        with open(OUTPUT_JSON, "r", encoding="utf-8") as handle:
            report = json.load(handle)
    except (OSError, json.JSONDecodeError):
        report = {}
    report["service"] = section
    with open(OUTPUT_JSON, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2)
    return section


def test_service_multiplexing(benchmark):
    section = benchmark.pedantic(run_service_experiment, rounds=1, iterations=1)
    rows = [
        [
            name,
            tenant["solo_seconds"],
            tenant["generations"],
            tenant["candidates"],
            tenant["cache_hits"],
            tenant["simulator_seconds"],
            tenant["bitwise_identical_to_solo"],
        ]
        for name, tenant in section["tenants"].items()
    ]
    rows.append([
        "multiplexed", section["multiplexed_seconds"], "-", "-", "-", "-",
        f"{section['multiplexed_vs_solo_total']:.2f}x vs solo total",
    ])
    print_table(
        ["tenant", "wall s", "generations", "candidates", "cache hits",
         "sim s", "bitwise == solo"],
        rows,
        title=(
            f"Co-search service — 2 tenants on {SERVICE_WORKERS} shared "
            f"workers ({SERVICE_ITERATIONS} generations x "
            f"{SERVICE_POPULATION} candidates each); "
            f"service section in {OUTPUT_JSON}"
        ),
    )
    # multiplexing must never change the science: every tenant's shared-pool
    # search reproduces its solo run bitwise
    for name, tenant in section["tenants"].items():
        assert tenant["bitwise_identical_to_solo"], (name, tenant)
        assert tenant["generations"] == SERVICE_ITERATIONS, (name, tenant)
        assert tenant["candidates"] > 0, (name, tenant)
