"""Table VII — pruning also speeds up classical simulation of the circuit
(fewer compiled gates means fewer tensor contractions per run).
"""

import time

import numpy as np

from helpers import print_table, small_task
from repro.baselines import build_human_circuit
from repro.core import get_design_space, prune_mask
from repro.devices import get_device
from repro.quantum.statevector import run_circuit
from repro.transpile import transpile

RATIOS = [0.0, 0.3, 0.6, 0.9]
REPEATS = 20


def run_experiment():
    dataset, encoder = small_task("mnist-4")
    space = get_design_space("u3cu3")
    circuit, _config = build_human_circuit(space, 4, 96, encoder=encoder)
    rng = np.random.default_rng(0)
    weights = circuit.init_weights(rng)
    device = get_device("yorktown")
    rows = []
    baseline_time = None
    for ratio in RATIOS:
        keep = prune_mask(weights, np.ones_like(weights, dtype=bool), ratio)
        pruned_weights = np.where(keep, weights, 0.0)
        compiled = transpile(circuit.bind(pruned_weights, dataset.x_test[0]),
                             device, initial_layout="trivial")
        reduced, _used = compiled.reduced_circuit()
        start = time.perf_counter()
        for _ in range(REPEATS):
            run_circuit(reduced)
        elapsed = (time.perf_counter() - start) / REPEATS
        if baseline_time is None:
            baseline_time = elapsed
        rows.append([f"{int(ratio * 100)}%", compiled.num_gates, elapsed,
                     1.0 - elapsed / baseline_time])
    return rows


def test_table07_pruning_speedup(benchmark):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    print_table(
        ["pruning ratio", "compiled gates", "simulation time (s)", "speedup"],
        rows,
        title="Table VII — simulation speedup from pruning",
    )
    # more pruning -> fewer compiled gates
    gates = [row[1] for row in rows]
    assert gates[-1] < gates[0]
