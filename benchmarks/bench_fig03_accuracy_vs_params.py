"""Fig. 3 — measured accuracy vs #parameters for different design methods.

Baseline designs saturate and then drop as parameters (and noise) grow, while
the noise-adaptive search finds circuits that stay useful at larger sizes.
"""

from helpers import (
    baseline_measured_accuracy,
    print_table,
    run_quantumnas_qml,
)
from repro.core import get_design_space

BUDGETS = [24, 72]


def run_experiment():
    rows = []
    for budget in BUDGETS:
        human = baseline_measured_accuracy("human", "u3cu3", "mnist-4", budget)
        random_ = baseline_measured_accuracy("random", "u3cu3", "mnist-4", budget)
        rows.append([budget, "human", human["accuracy"]])
        rows.append([budget, "random", random_["accuracy"]])
    nas = run_quantumnas_qml("u3cu3", "mnist-4", "yorktown")
    nas_params = nas.best_config.num_parameters(get_design_space("u3cu3"))
    rows.append([nas_params, "quantumnas", nas.measured["accuracy"]])
    return rows


def test_fig03_accuracy_vs_params(benchmark):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    print_table(
        ["#params", "method", "measured acc"],
        rows,
        title="Fig. 3 — measured accuracy vs #parameters (MNIST-4, Yorktown)",
    )
    best_baseline = max(r[2] for r in rows if r[1] != "quantumnas")
    nas_acc = [r[2] for r in rows if r[1] == "quantumnas"][0]
    # QuantumNAS should be competitive with the best baseline point
    assert nas_acc >= best_baseline - 0.2
