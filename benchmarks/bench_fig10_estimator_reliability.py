"""Fig. 10 — the performance estimator's predicted loss tracks the loss
measured on the (noisy) device for trained SubCircuits.
"""

import numpy as np

from helpers import measured_metrics, print_table, small_task, train_model
from repro.core import (
    ConfigSampler,
    EstimatorConfig,
    PerformanceEstimator,
    SamplerConfig,
    SuperCircuit,
    SuperTrainConfig,
    get_design_space,
    train_supercircuit_qml,
)
from repro.devices import get_device
from repro.utils.stats import spearman_correlation

N_SUBCIRCUITS = 8


def run_experiment():
    dataset, encoder = small_task("mnist-4")
    space = get_design_space("u3cu3")
    device = get_device("yorktown")
    supercircuit = SuperCircuit(space, 4, encoder=encoder, seed=0)
    train_supercircuit_qml(supercircuit, dataset, 4,
                           SuperTrainConfig(steps=60, batch_size=32, seed=0))
    estimator = PerformanceEstimator(
        device, EstimatorConfig(mode="success_rate", n_valid_samples=12)
    )
    sampler = ConfigSampler(space, 4, SamplerConfig(progressive_shrink=False),
                            rng=np.random.default_rng(2))
    predicted, real = [], []
    for _ in range(N_SUBCIRCUITS):
        config = sampler.sample()
        circuit, _ = supercircuit.build_standalone_circuit(config)
        inherited = supercircuit.inherited_weights(config)
        predicted.append(
            estimator.estimate_qml(circuit, inherited, dataset, 4, layout=(0, 1, 2, 3))
        )
        model, weights = train_model(circuit, dataset, 4, epochs=8)
        measured = measured_metrics(model, weights, dataset, "yorktown",
                                    layout=(0, 1, 2, 3), max_samples=10)
        real.append(measured["loss"])
    correlation = spearman_correlation(np.array(predicted), np.array(real))
    return predicted, real, correlation


def test_fig10_estimator_reliability(benchmark):
    predicted, real, correlation = benchmark.pedantic(
        run_experiment, rounds=1, iterations=1
    )
    rows = [[i, p, r] for i, (p, r) in enumerate(zip(predicted, real))]
    rows.append(["spearman", correlation, ""])
    print_table(
        ["subcircuit", "estimator loss", "measured loss on device"],
        rows,
        title="Fig. 10 — estimator reliability (MNIST-4, U3+CU3, Yorktown)",
    )
    assert np.isfinite(correlation)
