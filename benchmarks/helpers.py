"""Shared helpers for the benchmark harness.

Every benchmark regenerates one table or figure of the paper in a scaled-down
setting (smaller datasets, fewer epochs, smaller search budgets) so the whole
harness runs on a laptop.  The *shape* of each result — which method wins, by
roughly what factor, where the crossover sits — is the reproduction target;
absolute numbers are recorded in EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from repro.baselines import build_human_circuit, build_random_circuit
from repro.core import (
    EstimatorConfig,
    EvolutionConfig,
    QMLPipelineConfig,
    QuantumNASQMLPipeline,
    SubCircuitConfig,
    SuperCircuit,
    SuperTrainConfig,
    get_design_space,
)
from repro.devices import QuantumBackend, get_device
from repro.qml import (
    QNNModel,
    TrainConfig,
    encoder_for_task,
    evaluate_on_backend,
    load_task,
    train_qnn,
)
from repro.utils.tables import print_table

__all__ = [
    "print_table",
    "small_task",
    "fast_pipeline_config",
    "train_model",
    "measured_metrics",
    "run_quantumnas_qml",
    "baseline_measured_accuracy",
]

#: dataset sizes used throughout the benchmark harness
TRAIN_SIZE, VALID_SIZE, TEST_SIZE = 96, 32, 48
#: how many test samples are executed on the noisy backend
EVAL_SAMPLES = 12
#: training epochs for SubCircuits and baselines
EPOCHS = 12


def small_task(task: str = "mnist-4"):
    """A scaled-down benchmark task plus its encoder."""
    dataset = load_task(task, n_train=TRAIN_SIZE, n_valid=VALID_SIZE, n_test=TEST_SIZE)
    encoder = encoder_for_task(task)
    return dataset, encoder


def fast_pipeline_config(
    estimator_mode: str = "success_rate",
    pruning_ratio: Optional[float] = None,
    seed: int = 0,
    engine: str = "batched",
) -> QMLPipelineConfig:
    """A QuantumNAS pipeline budget small enough for the benchmark harness.

    ``engine`` selects how co-search populations are evaluated: ``"batched"``
    submits them through the execution engine, ``"sequential"`` replays the
    per-candidate estimator path (the two agree to 1e-9).
    """
    return QMLPipelineConfig(
        super_train=SuperTrainConfig(steps=40, batch_size=32, seed=seed),
        evolution=EvolutionConfig(
            iterations=6, population_size=12, parent_size=4,
            mutation_size=5, crossover_size=3, seed=seed,
        ),
        estimator=EstimatorConfig(mode=estimator_mode, n_valid_samples=8, seed=seed,
                                  engine=engine),
        sub_train=TrainConfig(epochs=EPOCHS, batch_size=32, learning_rate=0.02,
                              seed=seed),
        pruning_ratio=pruning_ratio,
        finetune_epochs=3,
        eval_shots=0,
        eval_max_samples=EVAL_SAMPLES,
        seed=seed,
    )


def train_model(circuit, dataset, n_classes, epochs: int = EPOCHS, seed: int = 0):
    """Train a standalone parameterized circuit as a QNN."""
    model = QNNModel.from_circuit(circuit, n_classes)
    config = TrainConfig(epochs=epochs, batch_size=32, learning_rate=0.02, seed=seed)
    result = train_qnn(model, dataset, config)
    return model, result.weights


def measured_metrics(
    model,
    weights,
    dataset,
    device_name: str = "yorktown",
    layout=None,
    max_samples: int = EVAL_SAMPLES,
    seed: int = 0,
    device=None,
) -> Dict[str, float]:
    """Measured loss / accuracy on the noisy backend (exact probabilities)."""
    backend = QuantumBackend(
        device if device is not None else get_device(device_name), shots=0, seed=seed
    )
    return evaluate_on_backend(
        model, weights, dataset.x_test, dataset.y_test, backend,
        initial_layout=layout, max_samples=max_samples,
    )


def run_quantumnas_qml(
    space_name: str = "u3cu3",
    task: str = "mnist-4",
    device_name: str = "yorktown",
    pruning_ratio: Optional[float] = None,
    estimator_mode: str = "success_rate",
    seed: int = 0,
    device=None,
    engine: str = "batched",
):
    """Run the full (scaled-down) QuantumNAS pipeline and return its result."""
    dataset, encoder = small_task(task)
    space = get_design_space(space_name)
    pipeline = QuantumNASQMLPipeline(
        space,
        dataset,
        dataset.n_classes,
        device if device is not None else get_device(device_name),
        encoder,
        config=fast_pipeline_config(estimator_mode, pruning_ratio, seed,
                                    engine=engine),
    )
    return pipeline.run()


def baseline_measured_accuracy(
    kind: str,
    space_name: str,
    task: str,
    n_parameters: int,
    device_name: str = "yorktown",
    layout="noise_adaptive",
    seed: int = 0,
) -> Dict[str, float]:
    """Train and measure a human or random baseline with a parameter budget."""
    dataset, encoder = small_task(task)
    space = get_design_space(space_name)
    if kind == "human":
        circuit, _config = build_human_circuit(space, encoder.n_qubits, n_parameters,
                                               encoder=encoder, seed=seed)
    elif kind == "random":
        circuit, _config = build_random_circuit(space, encoder.n_qubits, n_parameters,
                                                encoder=encoder, seed=seed)
    else:
        raise ValueError(f"unknown baseline kind '{kind}'")
    model, weights = train_model(circuit, dataset, dataset.n_classes, seed=seed)
    return measured_metrics(model, weights, dataset, device_name, layout=layout,
                            seed=seed)
