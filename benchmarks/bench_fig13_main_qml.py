"""Fig. 13 — main QML comparison on IBMQ-Yorktown.

Measured accuracy of QuantumNAS (with and without pruning) against the
noise-unaware search, random generation and human-design baselines, in the
U3+CU3 design space on MNIST-4 (scaled down from the paper's 5 tasks x 6
spaces).
"""

from helpers import (
    baseline_measured_accuracy,
    print_table,
    run_quantumnas_qml,
)
from repro.core import get_design_space

SPACE = "u3cu3"
TASK = "mnist-4"


def run_experiment():
    nas = run_quantumnas_qml(SPACE, TASK, "yorktown", pruning_ratio=0.3)
    n_params = nas.best_config.num_parameters(get_design_space(SPACE))
    noise_unaware = run_quantumnas_qml(SPACE, TASK, "yorktown",
                                       estimator_mode="noise_free", seed=1)
    human = baseline_measured_accuracy("human", SPACE, TASK, n_params,
                                       layout="noise_adaptive")
    human_naive = baseline_measured_accuracy("human", SPACE, TASK, n_params,
                                             layout="trivial")
    random_ = baseline_measured_accuracy("random", SPACE, TASK, n_params)

    rows = [
        ["noise-unaware search", noise_unaware.measured["accuracy"]],
        ["random generated", random_["accuracy"]],
        ["human design (naive mapping)", human_naive["accuracy"]],
        ["human design (noise-adaptive mapping)", human["accuracy"]],
        ["QuantumNAS", nas.measured["accuracy"]],
    ]
    if nas.measured_pruned is not None:
        rows.append(["QuantumNAS + pruning", nas.measured_pruned["accuracy"]])
    return rows


def test_fig13_main_qml(benchmark):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    print_table(
        ["method", "measured accuracy"],
        rows,
        title=f"Fig. 13 — {TASK} in {SPACE} space on IBMQ-Yorktown",
    )
    accuracies = dict((row[0], row[1]) for row in rows)
    nas_best = max(v for k, v in accuracies.items() if k.startswith("QuantumNAS"))
    # QuantumNAS should be at least competitive with every baseline
    assert nas_best >= accuracies["noise-unaware search"] - 0.1
    assert nas_best >= accuracies["human design (naive mapping)"] - 0.1
